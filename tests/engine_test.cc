// End-to-end concolic engine tests: assemble a guarded program, explore
// from a wrong seed, check the engine recovers a triggering input and that
// the result is validated by concrete re-execution.
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/isa/assembler.h"

namespace sbce::core {
namespace {

EngineConfig IdealConfig() {
  EngineConfig cfg;
  cfg.symex.addr_policy = symex::SymAddrPolicy::kExpandWindow;
  cfg.symex.max_deref_depth = 8;
  cfg.symex.jump_policy = symex::SymJumpPolicy::kSolveTargets;
  cfg.symex.trap_model = symex::TrapModel::kFollowTrace;
  cfg.symex.track_channels = true;
  cfg.symex.track_pipe_channels = true;
  cfg.symex.cross_thread = true;
  cfg.symex.cross_process = true;
  cfg.sources.argv_max_len = 12;
  cfg.solver_supports_fp = true;
  return cfg;
}

struct Setup {
  isa::BinaryImage image;
  uint64_t bomb_pc = 0;
};

Setup Build(std::string_view src) {
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  auto bomb = img.value().FindSymbol("bomb");
  SBCE_CHECK_MSG(bomb.has_value(), "program must define a 'bomb' label");
  return {std::move(img).value(), *bomb};
}

EngineResult RunEngine(const Setup& setup, std::vector<std::string> seed,
                 EngineConfig cfg = IdealConfig()) {
  ConcolicEngine engine(
      setup.image,
      [&](const std::vector<std::string>& argv) {
        vm::Machine::Options opts;
        // Reserve window-sized argv slots so symbolic layouts are stable.
        return std::make_unique<vm::Machine>(setup.image, argv,
                                             vm::Devices(), opts);
      },
      cfg);
  return engine.Explore(seed, setup.bomb_pc);
}

// Triggers when argv[1][0] == 'K' and argv[1][1] == 'E'.
constexpr std::string_view kTwoByteGuard = R"(
  .entry main
  main:
    ld8 r3, [r2+8]      ; argv[1]
    ld1 r4, [r3+0]
    cmpeqi r5, r4, 'K'
    bz r5, exit
    ld1 r4, [r3+1]
    cmpeqi r5, r4, 'E'
    bz r5, exit
  bomb:
    sys 16
  exit:
    movi r1, 0
    sys 0
)";

TEST(ConcolicEngine, SolvesByteEqualityGuard) {
  auto setup = Build(kTwoByteGuard);
  auto result = RunEngine(setup, {"prog", "AA"});
  EXPECT_TRUE(result.claimed);
  ASSERT_TRUE(result.validated);
  ASSERT_EQ(result.claimed_argv.size(), 2u);
  EXPECT_EQ(result.claimed_argv[1].substr(0, 2), "KE");
}

TEST(ConcolicEngine, SolvesArithmeticGuard) {
  // x = argv[1][0] - '0'; bomb iff x * x == 49.
  auto setup = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      subi r4, r4, '0'
      mul r5, r4, r4
      cmpeqi r6, r5, 49
      bz r6, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
  )");
  auto result = RunEngine(setup, {"prog", "1"});
  ASSERT_TRUE(result.validated);
  // Both 7 and -7 (byte ')') square to 49; either is a valid trigger.
  EXPECT_TRUE(result.claimed_argv[1][0] == '7' ||
              result.claimed_argv[1][0] == ')')
      << result.claimed_argv[1];
}

TEST(ConcolicEngine, SolvesLoopLengthGuard) {
  // strlen(argv[1]) == 5 triggers; seed has length 1; needs the window.
  auto setup = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      movi r4, 0        ; n
    loop:
      ldx1 r5, [r3+r4]
      bz r5, done
      addi r4, r4, 1
      jmp loop
    done:
      cmpeqi r6, r4, 5
      bz r6, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
  )");
  auto result = RunEngine(setup, {"prog", "a"});
  ASSERT_TRUE(result.validated) << "rounds=" << result.metrics.rounds;
  EXPECT_EQ(result.claimed_argv[1].size(), 5u);
}

TEST(ConcolicEngine, NoSymbolicBranchMeansNoClaim) {
  // Guarded by the (concrete) clock only: Es0 territory.
  auto setup = Build(R"(
    .entry main
    main:
      sys 5             ; time()
      cmpeqi r5, r0, 12345
      bz r5, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
  )");
  auto result = RunEngine(setup, {"prog", "x"});
  EXPECT_FALSE(result.claimed);
  EXPECT_FALSE(result.any_symbolic_branch);
}

TEST(ConcolicEngine, SolvesOneLevelSymbolicArray) {
  // bomb iff table[argv_digit] == 77 (only index 6 holds 77).
  auto setup = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      subi r4, r4, '0'
      lea r6, table
      ldx1 r5, [r6+r4]
      cmpeqi r7, r5, 77
      bz r7, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
    .data
    table: .byte 1, 2, 3, 4, 5, 6, 77, 8, 9, 10
  )");
  auto result = RunEngine(setup, {"prog", "0"});
  ASSERT_TRUE(result.validated) << "rounds=" << result.metrics.rounds;
  EXPECT_EQ(result.claimed_argv[1][0], '6');
}

TEST(ConcolicEngine, ConcretizePolicyFailsArrayWithEs3) {
  auto setup = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      subi r4, r4, '0'
      lea r6, table
      ldx1 r5, [r6+r4]
      cmpeqi r7, r5, 77
      bz r7, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
    .data
    table: .byte 1, 2, 3, 4, 5, 6, 77, 8, 9, 10
  )");
  EngineConfig cfg = IdealConfig();
  cfg.symex.addr_policy = symex::SymAddrPolicy::kConcretize;
  auto result = RunEngine(setup, {"prog", "0"}, cfg);
  EXPECT_FALSE(result.validated);
  EXPECT_TRUE(result.diag.Has(symex::ErrorStage::kEs3));
}

TEST(ConcolicEngine, SolvesTrapGuardedBomb) {
  // Division by zero vectors to a handler that detonates: input "0".
  auto setup = Build(R"(
    .entry main
    main:
      movi r1, handler
      sys 14
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      subi r4, r4, '0'
      movi r5, 100
      udiv r6, r5, r4
      movi r1, 0
      sys 0
    handler:
    bomb:
      sys 16
      movi r1, 0
      sys 0
  )");
  auto result = RunEngine(setup, {"prog", "5"});
  ASSERT_TRUE(result.validated) << "rounds=" << result.metrics.rounds;
  EXPECT_EQ(result.claimed_argv[1][0], '0');
}

constexpr std::string_view kSymbolicJumpProgram = R"(
  .entry main
  main:
    ld8 r3, [r2+8]
    ld1 r4, [r3+0]
    subi r4, r4, '0'
    muli r4, r4, 8
    movi r5, slots
    add r5, r5, r4
    jmpr r5
  slots:
  exit:
    movi r1, 0
    sys 0
    nop
  bomb:
    sys 16
    movi r1, 0
    sys 0
)";

TEST(ConcolicEngine, SolvesSymbolicJumpWithSoundPolicy) {
  // jmpr to slots+8*digit: digit 0 exits cleanly, digit 3 hits the bomb.
  auto setup = Build(kSymbolicJumpProgram);
  auto result = RunEngine(setup, {"prog", "0"});
  ASSERT_TRUE(result.validated) << "rounds=" << result.metrics.rounds;
  EXPECT_EQ(result.claimed_argv[1][0], '3');
}

TEST(ConcolicEngine, BuggyJumpPolicyClaimsButFailsValidation) {
  auto setup = Build(kSymbolicJumpProgram);
  EngineConfig cfg = IdealConfig();
  cfg.symex.jump_policy = symex::SymJumpPolicy::kBuggyResolve;
  auto result = RunEngine(setup, {"prog", "0"}, cfg);
  EXPECT_TRUE(result.claimed);
  EXPECT_FALSE(result.validated);
}

TEST(ConcolicEngine, TraceBudgetAborts) {
  auto setup = Build(R"(
    .entry main
    main:
      movi r4, 0
    loop:
      addi r4, r4, 1
      cmpltui r5, r4, 100000
      bnz r5, loop
      movi r1, 0
      sys 0
    bomb:
      sys 16
  )");
  EngineConfig cfg = IdealConfig();
  cfg.budgets.max_trace_events = 1000;
  auto result = RunEngine(setup, {"prog", "x"}, cfg);
  EXPECT_TRUE(result.aborted);
}

TEST(ConcolicEngine, UnsupportedOpcodeRaisesEs1) {
  // Symbolic value pushed through the stack with push/pop unsupported.
  auto setup = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      push r4
      pop r5
      cmpeqi r6, r5, 'Z'
      bz r6, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
  )");
  EngineConfig cfg = IdealConfig();
  cfg.symex.unsupported_opcodes = {isa::Opcode::kPush, isa::Opcode::kPop};
  auto result = RunEngine(setup, {"prog", "A"}, cfg);
  EXPECT_FALSE(result.validated);
  EXPECT_TRUE(result.diag.Has(symex::ErrorStage::kEs1));
  // With full support the same bomb is solved.
  auto ok = RunEngine(setup, {"prog", "A"});
  EXPECT_TRUE(ok.validated);
  EXPECT_EQ(ok.claimed_argv[1][0], 'Z');
}

TEST(ConcolicEngine, FpGuardSolvedBySearch) {
  // bomb iff 1024.0 + tiny(argv) == 1024.0 && tiny > 0, where tiny is
  // built as argv_digit scaled down hard: digit d → d * 2^-1074-ish.
  // Simpler: bomb iff double(x) * 0.5 == 3.5 → x == 7.
  auto setup = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      subi r4, r4, '0'
      cvtif f0, r4
      lea r6, half
      fld f1, [r6+0]
      fmul f2, f0, f1
      fld f3, [r6+8]
      fcmpeq r7, f2, f3
      bz r7, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
    .data
    half: .quad 0x3FE0000000000000, 0x400C000000000000
  )");
  auto result = RunEngine(setup, {"prog", "1"});
  ASSERT_TRUE(result.validated) << "rounds=" << result.metrics.rounds;
  EXPECT_EQ(result.claimed_argv[1][0], '7');
}

TEST(ConcolicEngine, FpWithoutTheoryRaisesEs3) {
  auto setup = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      subi r4, r4, '0'
      cvtif f0, r4
      lea r6, half
      fld f1, [r6+0]
      fcmpeq r7, f0, f1
      bz r7, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
    .data
    half: .quad 0x401C000000000000
  )");
  EngineConfig cfg = IdealConfig();
  cfg.solver_supports_fp = false;
  auto result = RunEngine(setup, {"prog", "1"}, cfg);
  EXPECT_FALSE(result.validated);
  EXPECT_TRUE(result.diag.Has(symex::ErrorStage::kEs3));
}

}  // namespace
}  // namespace sbce::core
