// Snapshot/restore stress: run a deep loop in tiny budget slices, taking
// a fresh snapshot every slice and restoring it into a brand-new machine
// — more than 10k generations — then check the final state is
// bit-identical to one uninterrupted run. Exercises CoW page sharing,
// refcount churn and restore bookkeeping hard enough for asan/tsan to
// catch lifetime mistakes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/isa/assembler.h"
#include "src/vm/machine.h"

namespace sbce::vm {
namespace {

// ~750k instructions of loop, then a memory-visible result: the
// accumulator lands in `cell`, is written to stdout, and decides the exit
// code.
constexpr std::string_view kDeepLoop = R"(
  .entry main
  main:
    movi r4, 0
    movi r3, 250000
  loop:
    addi r4, r4, 3
    subi r3, r3, 1
    bnz r3, loop
    lea r5, cell
    st8 r4, [r5+0]
    movi r1, 1
    mov r2, r5
    movi r3, 8
    sys 1             ; write(1, cell, 8)
    movi r1, 77
    sys 0             ; exit(77)
  .data
  cell: .asciz "xxxxxxxx"
)";

TEST(SnapshotStress, TenThousandGenerationsMatchFromScratch) {
  auto img = isa::Assemble(kDeepLoop);
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  const isa::BinaryImage image = std::move(img).value();
  const auto cell = image.FindSymbol("cell");
  ASSERT_TRUE(cell.has_value());
  const std::vector<std::string> argv = {"prog"};

  // Reference: one uninterrupted run.
  Machine scratch(image, argv);
  const RunResult want = scratch.Run();
  ASSERT_TRUE(want.exited);
  ASSERT_EQ(want.exit_code, 77);

  // Sliced: every generation runs at most `kSlice` more instructions,
  // snapshots, and hands the snapshot to a brand-new machine.
  constexpr uint64_t kSlice = 48;  // one scheduler sweep per generation
  MachineSnapshot snap;
  RunResult rr;
  uint64_t generations = 0;
  {
    Machine::Options opts;
    opts.max_instructions = kSlice;
    Machine m(image, argv, Devices(), opts);
    rr = m.Run();
    snap = m.Snapshot();
  }
  ++generations;
  while (!rr.exited && !rr.faulted) {
    ASSERT_TRUE(rr.budget_exhausted) << "slice stopped for another reason";
    Machine::Options opts;
    opts.max_instructions = rr.instructions + kSlice;
    Machine m(image, argv, Devices(), opts);
    m.Restore(snap);
    rr = m.Run();
    snap = m.Snapshot();
    ++generations;
    ASSERT_LT(generations, 30'000u) << "runaway: program never finished";
  }

  EXPECT_GE(generations, 10'000u);
  EXPECT_TRUE(rr.exited);
  EXPECT_EQ(rr.exit_code, want.exit_code);
  EXPECT_EQ(rr.instructions, want.instructions);
  EXPECT_EQ(rr.stdout_text, want.stdout_text);

  // Bit-identical final memory: the accumulator cell and the whole data
  // page around it.
  const Memory& got_mem = snap.processes.front()->mem;
  const Memory& want_mem = scratch.root().mem;
  EXPECT_EQ(got_mem.ReadU64(*cell), want_mem.ReadU64(*cell));
  EXPECT_EQ(got_mem.ReadU64(*cell), 750'000u);
  const uint64_t page = *cell & ~(Memory::kPageSize - 1);
  for (uint64_t off = 0; off < Memory::kPageSize; off += 8) {
    ASSERT_EQ(got_mem.ReadU64(page + off), want_mem.ReadU64(page + off))
        << "data page differs at +" << off;
  }
}

TEST(SnapshotStress, SnapshotIsolatesFromContinuedExecution) {
  // A snapshot taken mid-run must keep its state even as the source
  // machine keeps running and rewrites the shared pages (CoW isolation).
  auto img = isa::Assemble(kDeepLoop);
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  const isa::BinaryImage image = std::move(img).value();
  const auto cell = image.FindSymbol("cell");
  ASSERT_TRUE(cell.has_value());

  Machine::Options opts;
  opts.max_instructions = 3'000;
  Machine m(image, {"prog"}, Devices(), opts);
  RunResult rr = m.Run();
  ASSERT_TRUE(rr.budget_exhausted);
  const MachineSnapshot early = m.Snapshot();
  const uint64_t early_r4 = early.processes.front()->threads.front()->cpu.r[4];

  // Finish the run in a second machine; the early snapshot is untouched.
  Machine rest(image, {"prog"});
  rest.Restore(early);
  const RunResult done = rest.Run();
  EXPECT_TRUE(done.exited);
  EXPECT_EQ(rest.root().mem.ReadU64(*cell), 750'000u);
  EXPECT_EQ(early.processes.front()->threads.front()->cpu.r[4], early_r4);
  EXPECT_EQ(early.processes.front()->mem.ReadU64(*cell), 0x7878787878787878u);
}

}  // namespace
}  // namespace sbce::vm
