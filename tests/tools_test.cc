// Tool-model tests: classifier precedence, profile construction, and fast
// representative Table II cells per tool (the full grid runs in
// bench/table2_tool_grid; here we pin the cheap cells so regressions in
// any mechanism fail unit tests quickly).
#include <gtest/gtest.h>

#include "src/report/table.h"
#include "src/service/api.h"
#include "src/tools/runner.h"

namespace sbce::tools {
namespace {

using symex::ErrorStage;

core::EngineResult MakeResult() {
  core::EngineResult r;
  r.any_symbolic_seen = true;
  return r;
}

TEST(Classify, AbortBeatsEverything) {
  auto r = MakeResult();
  r.aborted = true;
  r.validated = true;  // nonsensical combination, abort still wins
  EXPECT_EQ(Classify(r), Outcome::kE);
}

TEST(Classify, ValidatedIsSuccess) {
  auto r = MakeResult();
  r.claimed = true;
  r.validated = true;
  r.diag.Raise(ErrorStage::kEs2, "noise");  // diags don't demote successes
  EXPECT_EQ(Classify(r), Outcome::kOk);
}

TEST(Classify, UnvalidatedClaimSplitsOnEnvironment) {
  auto r = MakeResult();
  r.claimed = true;
  r.provenance = core::ClaimProvenance::kSysEnv;
  EXPECT_EQ(Classify(r), Outcome::kP);
  // A claim leaning only on skipped library calls is still a wrong test
  // case, not a partial success.
  r.provenance = core::ClaimProvenance::kLibEnv;
  EXPECT_EQ(Classify(r), Outcome::kEs2);
  r.provenance = core::ClaimProvenance::kSysEnv | core::ClaimProvenance::kLibEnv;
  EXPECT_EQ(Classify(r), Outcome::kP);
  r.provenance = core::ClaimProvenance::kNone;
  EXPECT_EQ(Classify(r), Outcome::kEs2);
}

TEST(Classify, NoSymbolicDataIsEs0) {
  core::EngineResult r;  // any_symbolic_seen = false
  EXPECT_EQ(Classify(r), Outcome::kEs0);
}

TEST(Classify, StagePrecedenceWithoutClaims) {
  auto r = MakeResult();
  r.diag.Raise(ErrorStage::kEs2, "late");
  r.diag.Raise(ErrorStage::kEs1, "early");
  EXPECT_EQ(Classify(r), Outcome::kEs1);  // lifting failure wins
  auto r2 = MakeResult();
  r2.diag.Raise(ErrorStage::kEs2, "x");
  r2.diag.Raise(ErrorStage::kEs3, "y");
  EXPECT_EQ(Classify(r2), Outcome::kEs3);
  auto r3 = MakeResult();
  r3.diag.Raise(ErrorStage::kEs2, "x");
  EXPECT_EQ(Classify(r3), Outcome::kEs2);
}

TEST(Classify, ExhaustedExplorationFallsBackToEs0) {
  auto r = MakeResult();
  r.any_symbolic_branch = true;  // explored but never reached or claimed
  EXPECT_EQ(Classify(r), Outcome::kEs0);
}

TEST(Profiles, FourPaperToolsInColumnOrder) {
  auto tools = PaperTools();
  ASSERT_EQ(tools.size(), 4u);
  EXPECT_EQ(tools[0].name, "BAP");
  EXPECT_EQ(tools[1].name, "Triton");
  EXPECT_EQ(tools[2].name, "Angr");
  EXPECT_EQ(tools[3].name, "Angr-NoLib");
}

TEST(Profiles, CapabilitiesDiffer) {
  auto bap = Bap();
  auto triton = Triton();
  auto angr = Angr();
  auto nolib = AngrNoLib();
  // BAP alone lacks push/pop lifting.
  EXPECT_TRUE(bap.engine.symex.unsupported_opcodes.count(isa::Opcode::kPush));
  EXPECT_FALSE(
      triton.engine.symex.unsupported_opcodes.count(isa::Opcode::kPush));
  // Only the Angr family has a symbolic memory model and simulation.
  EXPECT_EQ(angr.engine.symex.addr_policy,
            symex::SymAddrPolicy::kExpandWindow);
  EXPECT_EQ(bap.engine.symex.addr_policy, symex::SymAddrPolicy::kConcretize);
  EXPECT_EQ(angr.engine.symex.syscall_model,
            symex::SyscallModel::kSimulateUnconstrained);
  // Only NoLib skips libraries and tracks pipes.
  EXPECT_EQ(nolib.engine.symex.lib_mode,
            symex::LibMode::kSkipUnconstrained);
  EXPECT_TRUE(nolib.engine.symex.track_pipe_channels);
  EXPECT_FALSE(angr.engine.symex.track_pipe_channels);
}

// Fast representative cells: one bomb per challenge whose four outcomes
// complete in well under a second each.
struct CellCase {
  const char* bomb;
  int tool;  // bombs::ToolIndex
};

class FastGridCell : public ::testing::TestWithParam<CellCase> {};

TEST_P(FastGridCell, MatchesPaper) {
  const auto [bomb_id, tool_index] = GetParam();
  const auto* bomb = bombs::FindBomb(bomb_id);
  ASSERT_NE(bomb, nullptr);
  auto tools = PaperTools();
  service::AnalysisRequest request;
  request.bomb = bomb_id;
  request.profile = tools[static_cast<size_t>(tool_index)].name;
  auto cell = service::Analyze(request);
  ASSERT_TRUE(cell.ok) << cell.error;
  EXPECT_TRUE(cell.matches_paper)
      << bomb_id << "/" << tools[tool_index].name << ": got "
      << OutcomeLabel(cell.outcome) << ", paper says " << cell.expected;
}

std::vector<CellCase> FastCells() {
  std::vector<CellCase> cases;
  for (const char* bomb :
       {"svd_time", "svd_web", "svd_syscall", "svd_argvlen", "csp_stack",
        "csp_file", "csp_syscall", "csp_exception", "csp_fileexcept",
        "par_pthread", "par_forkpipe", "arr_one", "arr_two", "ctx_filename",
        "ctx_syscallname", "jmp_direct", "jmp_table", "fp_round",
        "ext_sin"}) {
    for (int t = 0; t < 4; ++t) cases.push_back({bomb, t});
  }
  return cases;
}

std::string CellCaseName(const ::testing::TestParamInfo<CellCase>& info) {
  static constexpr const char* kTools[] = {"BAP", "Triton", "Angr",
                                           "AngrNoLib"};
  return std::string(info.param.bomb) + "_" + kTools[info.param.tool];
}

INSTANTIATE_TEST_SUITE_P(AccuracyRows, FastGridCell,
                         ::testing::ValuesIn(FastCells()), CellCaseName);

TEST(Report, TableRendersAligned) {
  report::AsciiTable table;
  table.SetHeader({"a", "bee"});
  table.AddRow({"xx", "y"});
  table.AddSeparator();
  table.AddRow({"1", "22222"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| a  | bee   |"), std::string::npos);
  EXPECT_NE(out.find("| xx | y     |"), std::string::npos);
  // Every line has the same width.
  size_t width = 0;
  size_t start = 0;
  while (start < out.size()) {
    size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    if (width == 0) width = end - start;
    EXPECT_EQ(end - start, width);
    start = end + 1;
  }
}

}  // namespace
}  // namespace sbce::tools
