// RunGrid determinism: the grid export and the trace stream must come out
// byte-identical for every worker count and across repeated runs.
#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/jsonl.h"
#include "src/tools/runner.h"

namespace sbce::tools {
namespace {

/// A small, fast cell subset: the full 88-cell grid takes minutes; these
/// bombs resolve in well under a second per cell while still exercising
/// both success and failure outcomes across two tool profiles.
std::vector<CellSpec> FastCells() {
  std::vector<CellSpec> cells;
  const std::vector<ToolProfile> profiles = {Bap(), AngrNoLib()};
  for (const char* id : {"svd_time", "csp_stack", "arr_one"}) {
    const auto* bomb = bombs::FindBomb(id);
    SBCE_CHECK_MSG(bomb != nullptr, id);
    for (const auto& tool : profiles) cells.push_back({bomb, tool});
  }
  return cells;
}

/// Timing-free fingerprint of a grid (GridToJson excludes wall-clock
/// metrics by design).
std::string Fingerprint(const GridResult& grid) {
  return obs::Dump(GridToJson(grid));
}

TEST(GridParallel, ResultsIdenticalAcrossJobCounts) {
  const auto cells = FastCells();
  RunOptions options;
  options.max_rounds = 6;
  const auto serial = RunGrid(cells, options, 1);
  ASSERT_EQ(serial.cells.size(), cells.size());
  const auto want = Fingerprint(serial);
  for (unsigned jobs : {2u, 8u, 0u}) {  // 0 = hardware concurrency
    EXPECT_EQ(Fingerprint(RunGrid(cells, options, jobs)), want)
        << "jobs=" << jobs;
  }
}

TEST(GridParallel, ResultsIdenticalAcrossRepeatedRuns) {
  const auto cells = FastCells();
  RunOptions options;
  options.max_rounds = 6;
  const auto want = Fingerprint(RunGrid(cells, options, 8));
  EXPECT_EQ(Fingerprint(RunGrid(cells, options, 8)), want);
}

TEST(GridParallel, CellOrderMatchesSpecOrder) {
  const auto cells = FastCells();
  RunOptions options;
  options.max_rounds = 6;
  const auto grid = RunGrid(cells, options, 8);
  ASSERT_EQ(grid.cells.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(grid.cells[i].bomb_id, cells[i].bomb->id) << i;
    EXPECT_EQ(grid.cells[i].tool, cells[i].tool.name) << i;
  }
}

TEST(GridParallel, BaselineMatchesDefaultPipeline) {
  // --baseline disables the query cache, slicing, incremental sessions,
  // the portfolio, and parallel dispatch; the grid contract says none of
  // those may change a verdict. The timing-free export must be
  // byte-identical across the two modes.
  const auto cells = FastCells();
  RunOptions fast;
  fast.max_rounds = 6;
  RunOptions baseline = fast;
  baseline.baseline_pipeline = true;
  EXPECT_EQ(Fingerprint(RunGrid(cells, fast, 4)),
            Fingerprint(RunGrid(cells, baseline, 1)));
}

TEST(GridParallel, TraceStreamIdenticalModuloTiming) {
  // Per-cell buffers replay into the sink in spec order, so the record
  // stream matches a serial run's except for wall-clock durations and
  // span ids (allocated from a process-global counter).
  const auto cells = FastCells();
  auto run = [&cells](unsigned jobs) {
    std::ostringstream out;
    obs::JsonlSink sink(&out);
    RunOptions options;
    options.max_rounds = 4;
    options.trace_sink = &sink;
    RunGrid(cells, options, jobs);
    static const std::regex kVarying(
        "\"(wall_micros|micros|span)\":[0-9]+");
    return std::regex_replace(out.str(), kVarying, "\"$1\":0");
  };
  const auto want = run(1);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(run(2), want);
  EXPECT_EQ(run(8), want);
}

TEST(GridParallel, TableTwoCellsLayout) {
  const auto tools = PaperTools();
  const auto cells = TableTwoCells(tools);
  const auto bombs = bombs::TableTwoBombs();
  ASSERT_EQ(cells.size(), bombs.size() * tools.size());
  // Bomb-major, tool-minor: cell (b, t) sits at b * |tools| + t.
  for (size_t b = 0; b < bombs.size(); ++b) {
    for (size_t t = 0; t < tools.size(); ++t) {
      const auto& cell = cells[b * tools.size() + t];
      EXPECT_EQ(cell.bomb, bombs[b]);
      EXPECT_EQ(cell.tool.name, tools[t].name);
    }
  }
}

}  // namespace
}  // namespace sbce::tools
