// Checkpoint-based re-exploration: CoW memory semantics, input-watch
// masks, the recorder's eviction policy, checkpoint reuse soundness
// (DeepestUsable), and end-to-end determinism — engine results, grid
// exports and trace streams must be bit-identical with checkpoints on or
// off, while resumed rounds actually fire (hit counters move).
#include <gtest/gtest.h>

#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/engine.h"
#include "src/isa/assembler.h"
#include "src/obs/jsonl.h"
#include "src/symex/executor.h"
#include "src/tools/runner.h"
#include "src/vm/machine.h"

namespace sbce::vm {
namespace {

TEST(MemoryCow, CloneSharesPagesUntilWrite) {
  Memory m;
  m.WriteU64(0x1000, 0xdeadbeefcafe1234ull);
  m.WriteU8(0x5000, 7);
  Memory c = m.Clone();
  EXPECT_EQ(c.ReadU64(0x1000), 0xdeadbeefcafe1234ull);
  EXPECT_EQ(c.ReadU8(0x5000), 7);
  // Reads never break sharing.
  EXPECT_EQ(m.CowPagesCopied(), 0u);

  // First write through either owner copies exactly the touched page.
  c.WriteU8(0x1000, 1);
  EXPECT_EQ(m.CowPagesCopied(), 1u);  // counter is lineage-shared
  EXPECT_EQ(c.CowPagesCopied(), 1u);
  EXPECT_EQ(m.ReadU64(0x1000), 0xdeadbeefcafe1234ull);
  EXPECT_EQ(c.ReadU8(0x1000), 1);

  // The page is now exclusively owned on both sides: no further copies.
  m.WriteU8(0x1001, 2);
  c.WriteU8(0x1002, 3);
  EXPECT_EQ(m.CowPagesCopied(), 1u);
  // The untouched page at 0x5000 stays shared.
  EXPECT_EQ(c.ReadU8(0x5000), 7);
}

TEST(MemoryCow, InputWatchMasks) {
  Memory m;
  m.WriteU8(0x100, 'a');
  m.WriteU8(0x101, 'b');
  m.WriteU8(0x102, 'c');
  m.SetInputWatch(0x100, 0x103);
  // Setup writes before the watch never mark.
  EXPECT_FALSE(m.InputConsumed(0x100));
  EXPECT_FALSE(m.InputOverwritten(0x100));

  // Read marks consumed.
  (void)m.ReadU8(0x100);
  EXPECT_TRUE(m.InputConsumed(0x100));
  EXPECT_FALSE(m.InputConsumed(0x101));

  // Write-before-read marks overwritten; a later read of the overwritten
  // byte observes the guest's own value, not input — it must not mark
  // consumed.
  m.WriteU8(0x101, 'Z');
  (void)m.ReadU8(0x101);
  EXPECT_TRUE(m.InputOverwritten(0x101));
  EXPECT_FALSE(m.InputConsumed(0x101));

  // Masks survive Clone (snapshots inherit the recorded prefix's view).
  Memory c = m.Clone();
  EXPECT_TRUE(c.InputConsumed(0x100));
  EXPECT_TRUE(c.InputOverwritten(0x101));
  EXPECT_FALSE(c.InputConsumed(0x102));

  // RebindInputByte changes the value without touching the masks.
  c.RebindInputByte(0x102, 'Q');
  EXPECT_FALSE(c.InputConsumed(0x102));
  EXPECT_FALSE(c.InputOverwritten(0x102));
  EXPECT_EQ(c.ReadU8(0x102), 'Q');
  // Out-of-range addresses are never marked.
  EXPECT_FALSE(m.InputConsumed(0x99));
  EXPECT_FALSE(m.InputOverwritten(0x103));
}

}  // namespace
}  // namespace sbce::vm

namespace sbce::core {
namespace {

TEST(CheckpointRecorder, StrideDoublingKeepsBudgetAndNewest) {
  CheckpointRecorder rec(4, 100);
  uint64_t last_gap = 0;
  for (uint64_t i = 1; i <= 32; ++i) {
    Checkpoint cp;
    cp.event_count = i;
    last_gap = rec.Add(std::move(cp));
  }
  const auto cps = rec.Take();
  ASSERT_LE(cps.size(), 4u);
  ASSERT_FALSE(cps.empty());
  // The most recent checkpoint always survives compaction.
  EXPECT_EQ(cps.back().event_count, 32u);
  // Event counts stay strictly ascending.
  for (size_t i = 1; i < cps.size(); ++i) {
    EXPECT_LT(cps[i - 1].event_count, cps[i].event_count);
  }
  // The stride doubled at least once and is a power-of-two multiple of
  // the initial stride.
  EXPECT_GT(last_gap, 100u);
  EXPECT_EQ(last_gap % 100u, 0u);
  uint64_t factor = last_gap / 100u;
  EXPECT_EQ(factor & (factor - 1), 0u);
}

TEST(CheckpointRecorder, ZeroBudgetDisables) {
  CheckpointRecorder rec(0, 100);
  Checkpoint cp;
  EXPECT_EQ(rec.Add(std::move(cp)), 0u);
  EXPECT_TRUE(rec.Take().empty());
}

class DeepestUsableTest : public ::testing::Test {
 protected:
  /// Runs `src` under `argv` with the argv block watched, then wraps the
  /// final machine state in a single-checkpoint trail.
  CheckpointTrail MakeTrail(std::string_view src,
                            const std::vector<std::string>& argv) {
    auto img = isa::Assemble(src);
    SBCE_CHECK_MSG(img.ok(), img.status().ToString());
    vm::Machine m(img.value(), argv);
    m.WatchArgvBlock();
    const auto rr = m.Run();
    SBCE_CHECK_MSG(rr.exited, "trail program must exit cleanly");

    CheckpointTrail trail;
    trail.argv = argv;
    for (size_t i = 0; i < argv.size(); ++i) {
      trail.argv_addrs.push_back(m.ArgvStringAddr(i));
    }
    Checkpoint cp;
    cp.vm = std::make_shared<const vm::MachineSnapshot>(m.Snapshot());
    cp.symex = std::make_shared<const symex::TraceExecutor>(
        &pool_, symex::SymexConfig{});
    cp.argv = std::make_shared<const std::vector<std::string>>(argv);
    trail.checkpoints.push_back(std::move(cp));
    return trail;
  }

  solver::ExprPool pool_;
};

// Reads argv[1][0]; never touches argv[1][1].
constexpr std::string_view kReadsByteZero = R"(
  .entry main
  main:
    ld8 r3, [r2+8]
    ld1 r4, [r3+0]
    movi r1, 0
    sys 0
)";

TEST_F(DeepestUsableTest, ConsumedByteBlocksReuse) {
  const auto trail = MakeTrail(kReadsByteZero, {"prog", "AB"});
  std::vector<InputPatch> patches;
  EXPECT_EQ(DeepestUsable(trail, {"prog", "XB"}, &patches), kNoCheckpoint);
}

TEST_F(DeepestUsableTest, UnconsumedDifferenceIsPatched) {
  const auto trail = MakeTrail(kReadsByteZero, {"prog", "AB"});
  std::vector<InputPatch> patches;
  ASSERT_EQ(DeepestUsable(trail, {"prog", "AX"}, &patches), 0u);
  ASSERT_EQ(patches.size(), 1u);
  EXPECT_EQ(patches[0].addr, trail.argv_addrs[1] + 1);
  EXPECT_EQ(patches[0].value, 'X');
}

TEST_F(DeepestUsableTest, IdenticalInputNeedsNoPatches) {
  const auto trail = MakeTrail(kReadsByteZero, {"prog", "AB"});
  std::vector<InputPatch> patches = {{1, 2}};
  ASSERT_EQ(DeepestUsable(trail, {"prog", "AB"}, &patches), 0u);
  EXPECT_TRUE(patches.empty());
}

TEST_F(DeepestUsableTest, LayoutMismatchBlocksReuse) {
  const auto trail = MakeTrail(kReadsByteZero, {"prog", "AB"});
  std::vector<InputPatch> patches;
  EXPECT_EQ(DeepestUsable(trail, {"prog", "ABC"}, &patches), kNoCheckpoint);
  EXPECT_EQ(DeepestUsable(trail, {"prog"}, &patches), kNoCheckpoint);
}

TEST_F(DeepestUsableTest, OverwrittenByteNeedsNoPatch) {
  // Overwrites argv[1][0] before reading it back: the initial byte is
  // dead, so a differing candidate may reuse the state without a patch.
  const auto trail = MakeTrail(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      movi r4, 90
      st1 r4, [r3+0]
      ld1 r5, [r3+0]
      movi r1, 0
      sys 0
  )",
                               {"prog", "AB"});
  std::vector<InputPatch> patches;
  ASSERT_EQ(DeepestUsable(trail, {"prog", "XB"}, &patches), 0u);
  EXPECT_TRUE(patches.empty());
}

EngineConfig TestConfig(bool checkpoints) {
  EngineConfig cfg;
  cfg.symex.addr_policy = symex::SymAddrPolicy::kExpandWindow;
  cfg.symex.jump_policy = symex::SymJumpPolicy::kSolveTargets;
  cfg.sources.argv_max_len = 4;
  cfg.checkpoints = checkpoints;
  return cfg;
}

EngineResult RunEngine(std::string_view src, std::vector<std::string> seed,
                       bool checkpoints) {
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  const isa::BinaryImage image = std::move(img).value();
  auto bomb = image.FindSymbol("bomb");
  SBCE_CHECK_MSG(bomb.has_value(), "program must define a 'bomb' label");
  ConcolicEngine engine(
      image,
      [&image](const std::vector<std::string>& argv) {
        return std::make_unique<vm::Machine>(image, argv);
      },
      TestConfig(checkpoints));
  return engine.Explore(seed, *bomb);
}

// A deep concrete prefix (the delay loop retires ~4.5k instructions, so
// several checkpoints land before any input byte is read) guarding a
// two-byte comparison: solving takes three rounds, and rounds 2 and 3
// can resume from an in-loop checkpoint.
constexpr std::string_view kDeepPrefixGuard = R"(
  .entry main
  main:
    movi r6, 1500
  delay:
    subi r6, r6, 1
    bnz r6, delay
    ld8 r3, [r2+8]
    ld1 r4, [r3+0]
    cmpeqi r5, r4, 'K'
    bz r5, exit
    ld1 r4, [r3+1]
    cmpeqi r5, r4, 'E'
    bz r5, exit
  bomb:
    sys 16
  exit:
    movi r1, 0
    sys 0
)";

TEST(CheckpointEngine, ResumedExplorationMatchesScratch) {
  const auto on = RunEngine(kDeepPrefixGuard, {"prog", "AA"}, true);
  const auto off = RunEngine(kDeepPrefixGuard, {"prog", "AA"}, false);

  // Identical engine outcome, bit for bit.
  EXPECT_TRUE(on.validated);
  EXPECT_EQ(on.claimed, off.claimed);
  EXPECT_EQ(on.validated, off.validated);
  EXPECT_EQ(on.claimed_argv, off.claimed_argv);
  EXPECT_EQ(on.explored_inputs, off.explored_inputs);
  EXPECT_EQ(on.metrics.rounds, off.metrics.rounds);
  EXPECT_EQ(on.metrics.total_events, off.metrics.total_events);
  EXPECT_EQ(on.metrics.solver_queries, off.metrics.solver_queries);
  EXPECT_EQ(on.diag.entries.size(), off.diag.entries.size());

  // ...but the checkpointed run actually resumed.
  EXPECT_GE(on.metrics.checkpoint_hits, 2u);
  EXPECT_EQ(off.metrics.checkpoint_hits, 0u);
  EXPECT_EQ(off.metrics.checkpoint_misses, 0u);
}

TEST(CheckpointEngine, EarlyConsumedByteForcesScratchRound) {
  // argv[1][0] is read before the delay loop, so every checkpoint has it
  // consumed: the round that changes byte 0 must run from scratch (miss),
  // while the later round that only changes byte 1 resumes (hit).
  constexpr std::string_view kEarlyRead = R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r7, [r3+0]
      movi r6, 1500
    delay:
      subi r6, r6, 1
      bnz r6, delay
      cmpeqi r5, r7, 'K'
      bz r5, exit
      ld1 r4, [r3+1]
      cmpeqi r5, r4, 'E'
      bz r5, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
  )";
  const auto on = RunEngine(kEarlyRead, {"prog", "AA"}, true);
  const auto off = RunEngine(kEarlyRead, {"prog", "AA"}, false);
  EXPECT_TRUE(on.validated);
  EXPECT_EQ(on.claimed_argv, off.claimed_argv);
  EXPECT_EQ(on.explored_inputs, off.explored_inputs);
  EXPECT_GE(on.metrics.checkpoint_misses, 1u);
  EXPECT_GE(on.metrics.checkpoint_hits, 1u);
}

}  // namespace
}  // namespace sbce::core

namespace sbce::tools {
namespace {

std::vector<CellSpec> FastCells() {
  std::vector<CellSpec> cells;
  const std::vector<ToolProfile> profiles = {Bap(), AngrNoLib()};
  for (const char* id : {"svd_time", "csp_stack", "arr_one"}) {
    const auto* bomb = bombs::FindBomb(id);
    SBCE_CHECK_MSG(bomb != nullptr, id);
    for (const auto& tool : profiles) cells.push_back({bomb, tool});
  }
  return cells;
}

TEST(CheckpointGrid, GridIdenticalWithAndWithoutCheckpoints) {
  const auto cells = FastCells();
  RunOptions on;
  on.max_rounds = 6;
  RunOptions off = on;
  off.no_checkpoints = true;

  const auto grid_on = RunGrid(cells, on, 1);
  const auto grid_off = RunGrid(cells, off, 1);
  EXPECT_EQ(obs::Dump(GridToJson(grid_on)), obs::Dump(GridToJson(grid_off)));

  // The toggle is observable only through the checkpoint counters. The
  // paper's bombs consume argv within the first few instructions, so the
  // reuse gate correctly refuses their checkpoints (misses, not hits) —
  // resumed rounds are exercised by the CheckpointEngine deep-prefix
  // tests instead.
  uint64_t attempts = 0;
  for (const auto& cell : grid_on.cells) {
    attempts += cell.engine.metrics.checkpoint_hits +
                cell.engine.metrics.checkpoint_misses;
  }
  for (const auto& cell : grid_off.cells) {
    EXPECT_EQ(cell.engine.metrics.checkpoint_hits, 0u);
    EXPECT_EQ(cell.engine.metrics.checkpoint_misses, 0u);
  }
  EXPECT_GT(attempts, 0u);
}

TEST(CheckpointGrid, TraceIdenticalWithAndWithoutCheckpointsAcrossJobs) {
  const auto cells = FastCells();
  auto run = [&cells](bool no_checkpoints, unsigned jobs) {
    std::ostringstream out;
    obs::JsonlSink sink(&out);
    RunOptions options;
    options.max_rounds = 4;
    options.trace_sink = &sink;
    options.no_checkpoints = no_checkpoints;
    RunGrid(cells, options, jobs);
    static const std::regex kVarying(
        "\"(wall_micros|micros|span)\":[0-9]+");
    return std::regex_replace(out.str(), kVarying, "\"$1\":0");
  };
  const auto want = run(false, 1);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(run(true, 1), want);   // checkpoints off, serial
  EXPECT_EQ(run(false, 4), want);  // checkpoints on, parallel
  EXPECT_EQ(run(true, 4), want);   // checkpoints off, parallel
}

}  // namespace
}  // namespace sbce::tools
