// VM edge cases: sparse memory behaviour, the in-memory filesystem, image
// loading, objdump rendering, syscall error paths, scheduler corner cases.
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/isa/objdump.h"
#include "src/vm/machine.h"
#include "src/vm/memory.h"
#include "src/vm/syscalls.h"

namespace sbce::vm {
namespace {

TEST(Memory, UnwrittenReadsAreZero) {
  Memory mem;
  EXPECT_EQ(mem.ReadU64(0xdeadbeef), 0u);
  EXPECT_EQ(mem.ReadU8(0), 0);
  EXPECT_EQ(mem.PageCount(), 0u);
}

TEST(Memory, CrossPageAccess) {
  Memory mem;
  const uint64_t boundary = Memory::kPageSize - 4;
  mem.WriteU64(boundary, 0x1122334455667788ull);
  EXPECT_EQ(mem.ReadU64(boundary), 0x1122334455667788ull);
  EXPECT_EQ(mem.ReadU32(Memory::kPageSize), 0x11223344u);
  EXPECT_EQ(mem.PageCount(), 2u);
}

TEST(Memory, CloneIsDeep) {
  Memory a;
  a.WriteU32(0x1000, 0xABCD1234);
  Memory b = a.Clone();
  b.WriteU32(0x1000, 0x55555555);
  EXPECT_EQ(a.ReadU32(0x1000), 0xABCD1234u);
  EXPECT_EQ(b.ReadU32(0x1000), 0x55555555u);
}

TEST(Memory, CStringBounds) {
  Memory mem;
  const char* text = "hello";
  mem.WriteBytes(0x100, std::span<const uint8_t>(
                            reinterpret_cast<const uint8_t*>(text), 6));
  EXPECT_EQ(mem.ReadCString(0x100).value(), "hello");
  // Unterminated within limit fails.
  Memory unterm;
  for (uint64_t i = 0; i < 64; ++i) unterm.WriteU8(0x200 + i, 'x');
  EXPECT_FALSE(unterm.ReadCString(0x200, 32).ok());
}

TEST(Filesystem, LifecycleAndErrors) {
  SimFilesystem fs;
  EXPECT_FALSE(fs.Exists("a.txt"));
  EXPECT_FALSE(fs.Get("a.txt").ok());
  fs.PutString("a.txt", "data");
  EXPECT_TRUE(fs.Exists("a.txt"));
  EXPECT_EQ(fs.Get("a.txt").value().size(), 4u);
  const uint8_t more[] = {'!', '!'};
  fs.Append("a.txt", more, 2);
  EXPECT_EQ(fs.Get("a.txt").value().size(), 6u);
  fs.Truncate("a.txt");
  EXPECT_EQ(fs.Get("a.txt").value().size(), 0u);
  EXPECT_TRUE(fs.Remove("a.txt"));
  EXPECT_FALSE(fs.Remove("a.txt"));
}

isa::BinaryImage MustAssemble(std::string_view src) {
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  return std::move(img).value();
}

TEST(Syscalls, WriteToBadFdFails) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      movi r1, 99
      lea r2, buf
      movi r3, 4
      sys 1
      cmpeqi r1, r0, -1
      sys 0
    .data
    buf: .space 4
  )");
  vm::Machine m(img, {"prog"});
  EXPECT_EQ(m.Run().exit_code, 1);
}

TEST(Syscalls, CloseInvalidFdFails) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      movi r1, 42
      sys 4
      cmpeqi r1, r0, -1
      sys 0
  )");
  vm::Machine m(img, {"prog"});
  EXPECT_EQ(m.Run().exit_code, 1);
}

TEST(Syscalls, UnknownSyscallFaults) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      sys 99
      movi r1, 0
      sys 0
  )");
  vm::Machine m(img, {"prog"});
  EXPECT_TRUE(m.Run().faulted);
}

TEST(Syscalls, UnlinkRemovesFiles) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      lea r1, path        ; unlink("f")
      sys 17
      mov r8, r0
      lea r1, path        ; open("f") should now fail
      movi r2, 0
      sys 3
      cmpeqi r5, r0, -1
      ; exit(unlink_ok * 10 + open_failed)
      cmpeqi r6, r8, 0
      muli r6, r6, 10
      add r1, r6, r5
      sys 0
    .data
    path: .asciz "f"
  )");
  vm::Machine m(img, {"prog"});
  m.fs().PutString("f", "x");
  EXPECT_EQ(m.Run().exit_code, 11);
}

TEST(Syscalls, SleepAdvancesVirtualTime) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      sys 5
      mov r8, r0          ; t0
      movi r1, 100
      sys 20              ; sleep(100)
      sys 5
      sub r1, r0, r8      ; t1 - t0
      sys 0
  )");
  vm::Machine m(img, {"prog"});
  EXPECT_EQ(m.Run().exit_code, 100);
}

TEST(Scheduler, JoinOnUnknownThreadFails) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      movi r1, 77
      sys 12
      cmpeqi r1, r0, -1
      sys 0
  )");
  vm::Machine m(img, {"prog"});
  EXPECT_EQ(m.Run().exit_code, 1);
}

TEST(Scheduler, DeadlockIsAFault) {
  // Two threads joining each other can't both finish; main joins a thread
  // that never halts.
  auto img = MustAssemble(R"(
    .entry main
    main:
      movi r1, spinner
      movi r2, 0
      sys 11
      mov r1, r0
      sys 12              ; join a thread that blocks on a silent pipe
      movi r1, 0
      sys 0
    spinner:
      lea r1, fdbuf
      sys 10
      ld8 r1, [r1+0]      ; read end
      lea r2, buf
      movi r3, 1
      sys 2               ; blocks forever (write end never written)
      halt
    .data
    fdbuf: .space 16
    buf:   .space 8
  )");
  vm::Machine m(img, {"prog"});
  auto r = m.Run();
  EXPECT_TRUE(r.faulted);
  EXPECT_NE(r.fault_reason.find("deadlock"), std::string::npos);
}

TEST(Objdump, RendersSectionsAndSymbols) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      movi r1, 5
      jmp done
    done:
      sys 0
    .data
    msg: .asciz "hi"
  )");
  const std::string dump = isa::Objdump(img);
  EXPECT_NE(dump.find("section .text"), std::string::npos);
  EXPECT_NE(dump.find("main:"), std::string::npos);
  EXPECT_NE(dump.find("movi r1, 5"), std::string::npos);
  EXPECT_NE(dump.find("|hi.|"), std::string::npos);
}

TEST(Objdump, MarksNonInstructionBytes) {
  isa::BinaryImage img;
  isa::Section s;
  s.name = ".text";
  s.vaddr = 0x1000;
  s.flags = isa::kSectionExec;
  s.data = {0xff, 1, 2, 3, 4, 5, 6, 7};  // invalid opcode
  img.AddSection(std::move(s));
  const std::string dump = isa::Objdump(img);
  EXPECT_NE(dump.find("not an instruction"), std::string::npos);
}

TEST(ArgvLayout, AddressesAreStableAcrossContents) {
  auto img = MustAssemble(".entry main\nmain:\n  halt\n");
  vm::Machine a(img, {"prog", "x"});
  vm::Machine b(img, {"prog", "a-much-longer-argument"});
  EXPECT_EQ(a.ArgvStringAddr(1), b.ArgvStringAddr(1));
}

}  // namespace
}  // namespace sbce::vm
