// The service determinism contract under real concurrency: sessions
// sharing one WarmCache must produce deterministic results byte-identical
// to serial cold-cache runs, and eviction pressure must never change a
// result. These suites run under tsan in CI (shared PredecodedText, query
// store and segment store across 8 parallel sessions).
#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/isa/assembler.h"
#include "src/obs/json.h"
#include "src/service/api.h"
#include "src/service/warm_cache.h"

namespace sbce {
namespace {

constexpr unsigned kSessions = 8;
constexpr unsigned kRoundsPerSession = 3;

// Two chained guards: bomb iff argv[1] == "AB".
constexpr char kTwoGuardProgram[] = R"(
  .entry main
  main:
    ld8 r3, [r2+8]
    ld1 r4, [r3+0]
    cmpeqi r5, r4, 65
    bz r5, exit
    ld1 r4, [r3+1]
    cmpeqi r5, r4, 66
    bz r5, exit
  bomb:
    sys 16
  exit:
    movi r1, 0
    sys 0
)";

struct Fixture {
  isa::BinaryImage image;
  std::vector<service::AnalysisRequest> mix;

  Fixture() {
    auto img = isa::Assemble(kTwoGuardProgram);
    SBCE_CHECK_MSG(img.ok(), img.status().ToString());
    image = std::move(img).value();

    service::AnalysisRequest bap;
    bap.bomb = "fig3_noprint";
    bap.profile = "BAP";
    bap.want_path_condition = true;
    mix.push_back(bap);

    service::AnalysisRequest ideal = bap;
    ideal.profile = "Ideal";
    mix.push_back(ideal);

    service::AnalysisRequest local;
    local.local_image = &image;
    local.seed_argv = {"prog", "zz"};
    local.target_pc = *image.FindSymbol("bomb");
    local.want_path_condition = true;
    mix.push_back(local);
  }
};

std::string DeterministicJson(const service::AnalysisResult& result) {
  return obs::Dump(service::ResultToJson(result, /*deterministic_only=*/true));
}

/// Serial, fully cold reference: every request analyzed with no shared
/// state at all.
std::vector<std::string> ColdReference(
    const std::vector<service::AnalysisRequest>& mix) {
  std::vector<std::string> reference;
  for (const auto& request : mix) {
    auto result = service::Analyze(request);
    SBCE_CHECK_MSG(result.ok, result.error);
    reference.push_back(DeterministicJson(result));
  }
  return reference;
}

/// Runs kSessions threads over the mix against one shared cache and
/// checks every deterministic document against the cold reference.
void RunSessionsAgainst(service::WarmCache& warm,
                        const std::vector<service::AnalysisRequest>& mix,
                        const std::vector<std::string>& reference) {
  std::vector<std::thread> threads;
  // Not vector<bool>: adjacent sessions must not share a packed word.
  std::array<std::atomic<bool>, kSessions> session_ok{};
  for (unsigned s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      service::AnalyzeEnv env;
      env.warm = &warm;
      bool all_match = true;
      for (unsigned round = 0; round < kRoundsPerSession; ++round) {
        // Stagger the order so sessions race on different entries.
        for (size_t i = 0; i < mix.size(); ++i) {
          const size_t m = (i + s + round) % mix.size();
          auto result = service::Analyze(mix[m], env);
          all_match = all_match && result.ok &&
                      DeterministicJson(result) == reference[m];
        }
      }
      session_ok[s] = all_match;
    });
  }
  for (auto& t : threads) t.join();
  for (unsigned s = 0; s < kSessions; ++s) {
    EXPECT_TRUE(session_ok[s]) << "session " << s
                               << " diverged from the serial cold reference";
  }
}

TEST(ServiceConcurrency, WarmSharedSessionsMatchSerialCold) {
  Fixture fx;
  const auto reference = ColdReference(fx.mix);

  service::WarmCache warm;
  RunSessionsAgainst(warm, fx.mix, reference);

  // The sessions actually shared state (this wasn't 24 cold runs).
  EXPECT_GE(warm.metrics().Value("service.decode_cache.hits"), 1u);
  EXPECT_GE(warm.metrics().Value("service.image_cache.hits"), 1u);
  EXPECT_GE(warm.metrics().Value("service.segment_store.hits"), 1u);
}

TEST(ServiceEviction, PressureNeverChangesResults) {
  Fixture fx;
  const auto reference = ColdReference(fx.mix);

  // Budgets far below one entry's footprint: every admission immediately
  // evicts, so sessions keep rebuilding state under each other.
  service::WarmCache::Options tiny;
  tiny.image_budget_bytes = 1;
  tiny.decode_budget_bytes = 1;
  tiny.query_budget_bytes = 1;
  tiny.segment_budget_bytes = 1;
  service::WarmCache warm(tiny);
  RunSessionsAgainst(warm, fx.mix, reference);

  EXPECT_GE(warm.metrics().Value("service.image_cache.evictions"), 1u);
  EXPECT_GE(warm.metrics().Value("service.decode_cache.evictions"), 1u);
}

}  // namespace
}  // namespace sbce
