// Unit tests for the support layer: Status/Result, string helpers, bit
// utilities, deterministic RNG.
#include <gtest/gtest.h>

#include "src/support/bits.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/str.h"

namespace sbce {
namespace {

TEST(Status, OkAndErrorStates) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status err = Status::NotFound("missing.txt");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: missing.txt");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad = Status::Invalid("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(good.value_or(-1), 42);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(Str, SplitAny) {
  auto parts = SplitAny("a, b\t c", ", \t");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitAny("", ",").empty());
  EXPECT_TRUE(SplitAny(",,,", ",").empty());
}

TEST(Str, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(Str, ParseIntLiteralForms) {
  EXPECT_EQ(ParseIntLiteral("42").value(), 42);
  EXPECT_EQ(ParseIntLiteral("-17").value(), -17);
  EXPECT_EQ(ParseIntLiteral("0x2A").value(), 0x2A);
  EXPECT_EQ(ParseIntLiteral("0b1010").value(), 10);
  EXPECT_EQ(ParseIntLiteral("1_000").value(), 1000);
  EXPECT_EQ(ParseIntLiteral("'A'").value(), 'A');
  EXPECT_EQ(ParseIntLiteral("'\\n'").value(), '\n');
  EXPECT_EQ(ParseIntLiteral("'\\0'").value(), 0);
  EXPECT_FALSE(ParseIntLiteral("").ok());
  EXPECT_FALSE(ParseIntLiteral("-").ok());
  EXPECT_FALSE(ParseIntLiteral("0xZZ").ok());
  EXPECT_FALSE(ParseIntLiteral("12a").ok());
}

TEST(Str, FormatAndPadding) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcd", 2), "abcd");
  EXPECT_TRUE(StartsWith("sysenv8_0", "sysenv"));
  EXPECT_FALSE(StartsWith("sys", "sysenv"));
}

TEST(Bits, TruncAndExtend) {
  EXPECT_EQ(TruncToWidth(0x1FF, 8), 0xFFu);
  EXPECT_EQ(TruncToWidth(0xFFFFFFFFFFFFFFFFull, 64), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(SignExtend(0x80, 8), 0xFFFFFFFFFFFFFF80ull);
  EXPECT_EQ(SignExtend(0x7F, 8), 0x7Full);
  EXPECT_EQ(AsSigned(0xFF, 8), -1);
  EXPECT_EQ(AsSigned(0x7FFF, 16), 32767);
  EXPECT_TRUE(GetBit(0b100, 2));
  EXPECT_FALSE(GetBit(0b100, 1));
}

TEST(Bits, HashingIsStableAndSpreads) {
  const char data[] = "hello";
  EXPECT_EQ(Fnv1a(data, 5), Fnv1a(data, 5));
  EXPECT_NE(Fnv1a("a", 1), Fnv1a("b", 1));
  EXPECT_NE(Fnv1a("ab", 2, 1), Fnv1a("ab", 2, 2));  // seed matters
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Rng, DeterministicAndUniformish) {
  SplitMix64 a(99);
  SplitMix64 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(1);
  int buckets[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++buckets[c.NextBelow(4)];
  for (int count : buckets) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
  for (int i = 0; i < 100; ++i) {
    const double u = c.NextUnit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace sbce
