// Bomb dataset ground truths: every bomb assembles; its witness input (or
// environment) detonates it; its seed input does not; binary sizes are in
// a sane band (the paper's dataset property, §V.A).
#include <gtest/gtest.h>

#include "src/bombs/bombs.h"
#include "src/vm/machine.h"

namespace sbce::bombs {
namespace {

vm::RunResult RunBomb(const BombSpec& spec, std::vector<std::string> argv,
                      const vm::Devices& devices) {
  auto image = BuildBomb(spec);
  vm::Machine machine(image, std::move(argv), devices);
  for (const auto& [path, contents] : spec.files) {
    machine.fs().PutString(path, contents);
  }
  return machine.Run();
}

TEST(BombDataset, HasTwentyTwoTableBombs) {
  EXPECT_EQ(TableTwoBombs().size(), 22u);
  // Plus the negative bomb and two Figure 3 programs.
  EXPECT_EQ(AllBombs().size(), 25u);
}

TEST(BombDataset, FindBombWorks) {
  EXPECT_NE(FindBomb("arr_one"), nullptr);
  EXPECT_EQ(FindBomb("nonexistent"), nullptr);
}

class BombGroundTruth : public ::testing::TestWithParam<std::string> {};

TEST_P(BombGroundTruth, SeedDoesNotTrigger) {
  const BombSpec* spec = FindBomb(GetParam());
  ASSERT_NE(spec, nullptr);
  auto result = RunBomb(*spec, spec->seed_argv, spec->experiment_devices);
  EXPECT_FALSE(result.faulted) << result.fault_reason;
  EXPECT_FALSE(result.bomb_triggered);
}

TEST_P(BombGroundTruth, WitnessTriggers) {
  const BombSpec* spec = FindBomb(GetParam());
  ASSERT_NE(spec, nullptr);
  if (spec->category == Category::kNegative) {
    GTEST_SKIP() << "negative bomb has no witness by construction";
  }
  const auto& argv =
      spec->witness_argv.empty() ? spec->seed_argv : spec->witness_argv;
  auto result = RunBomb(*spec, argv, spec->trigger_devices);
  EXPECT_FALSE(result.faulted) << result.fault_reason;
  EXPECT_TRUE(result.bomb_triggered);
}

// Every spec's ground truth is machine-checkable: GroundTruthFor derives
// the concrete witness (argv + devices + files, or the negative claim)
// from spec fields alone, and VerifyGroundTruth — the same gate the
// corpus generator applies before admitting a generated cell — passes on
// all 22 seed bombs plus the negative and demo programs.
TEST_P(BombGroundTruth, VerifyGroundTruthPasses) {
  const BombSpec* spec = FindBomb(GetParam());
  ASSERT_NE(spec, nullptr);
  const GroundTruth truth = GroundTruthFor(*spec);
  EXPECT_EQ(truth.expect_trigger, spec->category != Category::kNegative)
      << "only negative specs lack a triggering witness";
  if (truth.expect_trigger && spec->argv_can_trigger) {
    EXPECT_FALSE(truth.argv.empty());
  }
  const Status status = VerifyGroundTruth(*spec);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_P(BombGroundTruth, ArgvTriggerFlagConsistent) {
  const BombSpec* spec = FindBomb(GetParam());
  ASSERT_NE(spec, nullptr);
  if (spec->argv_can_trigger) {
    // The witness must work under *experiment* conditions.
    auto result =
        RunBomb(*spec, spec->witness_argv, spec->experiment_devices);
    EXPECT_TRUE(result.bomb_triggered)
        << "witness should detonate under experiment devices";
  }
}

std::vector<std::string> AllBombIds() {
  std::vector<std::string> ids;
  for (const auto& b : AllBombs()) ids.push_back(b.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllBombs, BombGroundTruth,
                         ::testing::ValuesIn(AllBombIds()),
                         [](const auto& info) { return info.param; });

TEST(BombDataset, BinarySizesAreSmall) {
  // The paper's binaries are 10K-25K bytes with a 14K median; ours carry
  // the guest library in every image, so just assert a sane small band.
  size_t min_size = SIZE_MAX;
  size_t max_size = 0;
  for (const auto& spec : AllBombs()) {
    auto image = BuildBomb(spec);
    const size_t size = image.Serialize().size();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_GE(min_size, 1000u);
  EXPECT_LE(max_size, 40'000u);
}

TEST(BombDataset, NegativeBombNeverTriggers) {
  const BombSpec* spec = FindBomb("neg_pow");
  ASSERT_NE(spec, nullptr);
  // Try a spread of digits: x^2 == -1 never holds.
  for (char c = '0'; c <= '9'; ++c) {
    auto result = RunBomb(*spec, {"prog", std::string(1, c)},
                          spec->experiment_devices);
    EXPECT_FALSE(result.bomb_triggered) << "digit " << c;
  }
}

TEST(BombDataset, ExpectationsUseValidLabels) {
  const std::set<std::string> valid = {"OK", "Es0", "Es1", "Es2",
                                       "Es3", "E",   "P",   "-"};
  for (const auto& spec : AllBombs()) {
    for (const auto& label : spec.expected) {
      EXPECT_TRUE(valid.count(label)) << spec.id << ": " << label;
    }
  }
}

}  // namespace
}  // namespace sbce::bombs
