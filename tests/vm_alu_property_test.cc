// Property suite: for every ALU opcode, the VM's result on random
// operands must agree with the symbolic expression the trace executor
// builds for it (checked via the concrete evaluator). This pins the three
// semantic definitions — interpreter, lifter/executor, and solver
// evaluator — to each other across the whole integer ISA.
#include <gtest/gtest.h>

#include <cstring>

#include "src/isa/assembler.h"
#include "src/support/bits.h"
#include "src/solver/eval.h"
#include "src/support/rng.h"
#include "src/support/str.h"
#include "src/symex/executor.h"
#include "src/vm/machine.h"

namespace sbce {
namespace {

struct AluCase {
  const char* mnemonic;
  bool has_rs2;       // register-register form
  bool imm_form;      // takes an immediate instead of rs2
};

const AluCase kCases[] = {
    {"add", true, false},   {"addi", false, true},
    {"sub", true, false},   {"subi", false, true},
    {"mul", true, false},   {"muli", false, true},
    {"udiv", true, false},  {"sdiv", true, false},
    {"urem", true, false},  {"srem", true, false},
    {"and", true, false},   {"andi", false, true},
    {"or", true, false},    {"ori", false, true},
    {"xor", true, false},   {"xori", false, true},
    {"shl", true, false},   {"shli", false, true},
    {"shr", true, false},   {"shri", false, true},
    {"sar", true, false},   {"sari", false, true},
    {"not", false, false},  {"neg", false, false},
    {"cmpeq", true, false}, {"cmpeqi", false, true},
    {"cmpne", true, false}, {"cmpnei", false, true},
    {"cmpltu", true, false},{"cmpltui", false, true},
    {"cmplts", true, false},{"cmpltsi", false, true},
    {"cmpleu", true, false},{"cmples", true, false},
};

class AluAgreement : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluAgreement, VmMatchesSymbolicExpression) {
  const AluCase& c = GetParam();
  SplitMix64 rng(Fnv1a(c.mnemonic, std::strlen(c.mnemonic)));

  for (int trial = 0; trial < 8; ++trial) {
    // Operands come from argv bytes so the executor builds expressions.
    uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    if (trial == 0) b = 0;                      // division corner
    if (trial == 1) { a = ~uint64_t{0}; b = 1; }
    const int32_t imm = static_cast<int32_t>(rng.Next());
    // Keep shift immediates in range so both semantics agree on intent.
    const int32_t shift_imm = static_cast<int32_t>(rng.NextBelow(64));
    const bool is_shift_imm = std::string_view(c.mnemonic).find("sh") == 0 ||
                              std::string_view(c.mnemonic) == "sari";
    const int32_t use_imm = is_shift_imm ? shift_imm : imm;

    // Program: load 8 argv bytes into r4 (and 8 more into r5), apply op,
    // store the result for inspection.
    std::string op_line;
    if (c.has_rs2) {
      // Mask register shift amounts like compiled code does.
      if (is_shift_imm) {
        op_line = StrFormat("andi r5, r5, 63\n      %s r6, r4, r5",
                            c.mnemonic);
      } else {
        op_line = StrFormat("%s r6, r4, r5", c.mnemonic);
      }
    } else if (c.imm_form) {
      op_line = StrFormat("%s r6, r4, %d", c.mnemonic, use_imm);
    } else {
      op_line = StrFormat("%s r6, r4", c.mnemonic);
    }
    const std::string src = StrFormat(R"(
      .entry main
      main:
        ld8 r3, [r2+8]
        ld8 r4, [r3+0]
        ld8 r5, [r3+8]
        %s
        lea r7, out
        st8 r6, [r7+0]
        movi r1, 0
        sys 0
      .data
      out: .space 8
    )",
                                      op_line.c_str());
    auto img = isa::Assemble(src);
    ASSERT_TRUE(img.ok()) << img.status().ToString();

    // 16 raw bytes of operands; avoid interior NULs by ORing 0x01 into
    // each byte (the exact values don't matter, agreement does).
    std::string arg(16, '\0');
    for (int i = 0; i < 8; ++i) {
      arg[i] = static_cast<char>((a >> (8 * i)) | 0x01);
      arg[8 + i] = static_cast<char>((b >> (8 * i)) | 0x01);
    }
    vm::Machine machine(img.value(), {"prog", arg});
    const uint64_t argv1 = machine.ArgvStringAddr(1);
    std::vector<vm::TraceEvent> events;
    machine.set_trace_hook(
        [&events](const vm::TraceEvent& ev) { events.push_back(ev); });
    auto run = machine.Run();
    ASSERT_FALSE(run.faulted) << c.mnemonic << ": " << run.fault_reason;
    const uint64_t vm_result =
        machine.root().mem.ReadU64(0x100000);

    // Symbolic walk with the argv bytes as variables.
    solver::ExprPool pool;
    symex::TraceExecutor exec(&pool, symex::SymexConfig{});
    std::vector<solver::ExprRef> bytes;
    solver::Assignment assignment;
    for (int i = 0; i < 16; ++i) {
      bytes.push_back(pool.Var(StrFormat("m%d", i), 8));
      assignment[StrFormat("m%d", i)] =
          static_cast<uint8_t>(arg[static_cast<size_t>(i)]);
    }
    exec.AddSymbolicBytes(argv1, bytes);
    exec.Execute(events);
    solver::ExprRef r6 = exec.state().Regs(events.front().pid, 1).gpr[6];
    ASSERT_NE(r6, nullptr) << c.mnemonic;
    EXPECT_EQ(solver::Evaluate(r6, assignment), vm_result)
        << c.mnemonic << " trial " << trial;
  }
}

std::string AluName(const ::testing::TestParamInfo<AluCase>& info) {
  return info.param.mnemonic;
}

INSTANTIATE_TEST_SUITE_P(AllAluOps, AluAgreement, ::testing::ValuesIn(kCases),
                         AluName);

}  // namespace
}  // namespace sbce
