// Pre-solver tests: direct Presolve() verdicts (abstract refutations,
// pinned models, non-definitive fallthrough, the FP bail rule), the
// pipeline integration (determinism across thread counts, status equality
// and model validity with the pre-solver on vs off, cross-check forced
// on), and the memoized variable-set satellite.
#include <gtest/gtest.h>

#include <vector>

#include "src/solver/eval.h"
#include "src/solver/pipeline.h"
#include "src/solver/presolve.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"

namespace sbce::solver {
namespace {

// --- Direct Presolve verdicts ---------------------------------------------

TEST(Presolve, ForwardPassRefutesImpossibleCompare) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  // zext(x,16) can never exceed 255.
  std::vector<ExprRef> as = {
      pool.Ult(pool.Const(300, 16), pool.ZExt(x, 16))};
  const PresolveVerdict v = Presolve(as);
  ASSERT_TRUE(v.definitive);
  EXPECT_EQ(v.result.status, SolveStatus::kUnsat);
}

TEST(Presolve, RefinementRefutesContradictoryBounds) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  // x < 5 and 10 < x cannot both hold.
  std::vector<ExprRef> as = {pool.Ult(x, pool.Const(5, 8)),
                             pool.Ult(pool.Const(10, 8), x)};
  const PresolveVerdict v = Presolve(as);
  ASSERT_TRUE(v.definitive);
  EXPECT_EQ(v.result.status, SolveStatus::kUnsat);
}

TEST(Presolve, RefinementRefutesKnownBitConflict) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  // (x | 1) == 0: bit 0 of the or is always 1.
  std::vector<ExprRef> as = {
      pool.Eq(pool.Or(x, pool.Const(1, 8)), pool.Const(0, 8))};
  const PresolveVerdict v = Presolve(as);
  ASSERT_TRUE(v.definitive);
  EXPECT_EQ(v.result.status, SolveStatus::kUnsat);
}

TEST(Presolve, CircuitBudgetGateDeclinesEvenRefutableQueries) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  // Refutable by the forward pass alone — but under a profile whose
  // max_sat_vars the circuit estimate exceeds, the full path would abort
  // the bit-blast (RESOURCE_EXHAUSTED -> kUnknown) before ever deriving
  // unsat, so the pre-solver must decline rather than answer. The modeled
  // tools' budget failures are paper-grid outcomes; the pre-solver may
  // never paper over them.
  std::vector<ExprRef> as = {
      pool.Ult(pool.Const(300, 16), pool.ZExt(x, 16))};
  SolverOptions starved;
  starved.max_sat_vars = 4;  // below the ~4-vars-per-bit estimate
  EXPECT_FALSE(PresolveCircuitFits(as, starved.max_sat_vars));
  EXPECT_FALSE(Presolve(as, starved).definitive);
  // The identical query under the default budget stays definitive.
  EXPECT_TRUE(Presolve(as).definitive);
}

TEST(Presolve, PinsSingleVariableEquality) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  std::vector<ExprRef> as = {pool.Eq(x, pool.Const(7, 8))};
  const PresolveVerdict v = Presolve(as);
  ASSERT_TRUE(v.definitive);
  ASSERT_EQ(v.result.status, SolveStatus::kSat);
  EXPECT_EQ(v.result.model.at("x"), 7u);
  EXPECT_TRUE(AllSatisfied(as, v.result.model));
}

TEST(Presolve, PinsThroughInvertibleArithmetic) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 16);
  // x + 100 == 141  ⇒  x == 41 (via the inverse-add pre-image).
  std::vector<ExprRef> as = {
      pool.Eq(pool.Add(x, pool.Const(100, 16)), pool.Const(141, 16))};
  const PresolveVerdict v = Presolve(as);
  ASSERT_TRUE(v.definitive);
  ASSERT_EQ(v.result.status, SolveStatus::kSat);
  EXPECT_EQ(v.result.model.at("x"), 41u);
}

TEST(Presolve, EnumerableRangeYieldsCanonicalModel) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  // Many models, but the refined range {0..4} is enumerable: the verdict
  // is the canonical (lexicographically-first) model, x = 0.
  std::vector<ExprRef> as = {pool.Ult(x, pool.Const(5, 8))};
  const PresolveVerdict v = Presolve(as);
  ASSERT_TRUE(v.definitive);
  ASSERT_EQ(v.result.status, SolveStatus::kSat);
  EXPECT_EQ(v.result.model.at("x"), 0u);
}

TEST(Presolve, WideUnboundedVariableIsNotDefinitive) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 64);
  // Satisfiable, but the refined range spans ~2^64 values — far past the
  // enumeration budget — and x*x is not invertible, so the pre-solver
  // must fall through to the SAT core.
  std::vector<ExprRef> as = {
      pool.Eq(pool.Binary(Kind::kMul, x, x), pool.Const(1, 64))};
  EXPECT_FALSE(Presolve(as).definitive);
}

TEST(Presolve, CanonicalModelMatchesCheckSatModel) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  // Two variables, enumerable product: the pre-solver's scan model and
  // the full CDCL path (which rewrites its model through the same scan)
  // must agree byte-for-byte, with the pre-solver on or off.
  std::vector<ExprRef> as = {
      pool.Ult(pool.Const(2, 8), x),      // x in {3..255} → refined
      pool.Ult(x, pool.Const(7, 8)),      // x in {3..6}
      pool.Eq(pool.Add(x, y), pool.Const(9, 8)),
  };
  const PresolveVerdict v = Presolve(as);
  ASSERT_TRUE(v.definitive);
  ASSERT_EQ(v.result.status, SolveStatus::kSat);
  // Scan order: x (first variable) cycles fastest, so the first hit is
  // the largest x with the smallest y: y=3, x=6.
  EXPECT_EQ(v.result.model.at("x"), 6u);
  EXPECT_EQ(v.result.model.at("y"), 3u);
  for (bool presolve : {true, false}) {
    SolverOptions opts;
    opts.presolve = presolve;
    const SolveResult full = CheckSat(as, opts);
    ASSERT_EQ(full.status, SolveStatus::kSat);
    EXPECT_EQ(full.model, v.result.model) << "presolve=" << presolve;
  }
}

TEST(Presolve, FpQueriesAlwaysFallThrough) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 64);
  // The integer part of this query is abstractly refutable (x < 3 and
  // x == 5), but the FP conjunct routes the whole query to the FP search —
  // which can answer kUnknown but never kUnsat — so the pre-solver must
  // not judge it.
  ExprRef fp = pool.Binary(Kind::kFAdd, x, x);
  std::vector<ExprRef> as = {
      pool.Ult(x, pool.Const(3, 64)),
      pool.Eq(x, pool.Const(5, 64)),
      pool.Eq(fp, pool.Const(0x400921fb54442d18ull, 64)),
  };
  ASSERT_TRUE(ContainsFp(as));
  EXPECT_FALSE(Presolve(as).definitive);
}

TEST(Presolve, DivisionByZeroSemanticsAreRespected) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  // SMT-LIB: x udiv 0 = 0xff, so (x udiv 0) == 0 is a refutation and
  // (x udiv 0) == 0xff is a tautology (every x works — not definitive,
  // nothing pinned, but must not be refuted either).
  ExprRef div = pool.Binary(Kind::kUDiv, x, pool.Const(0, 8));
  std::vector<ExprRef> refuted = {pool.Eq(div, pool.Const(0, 8))};
  const PresolveVerdict v1 = Presolve(refuted);
  ASSERT_TRUE(v1.definitive);
  EXPECT_EQ(v1.result.status, SolveStatus::kUnsat);
  std::vector<ExprRef> tautology = {pool.Eq(div, pool.Const(0xff, 8))};
  const PresolveVerdict v2 = Presolve(tautology);
  if (v2.definitive) {
    // The simplifier may fold the tautology before Presolve ever sees a
    // variable; a kSat verdict must then carry a satisfying model.
    EXPECT_EQ(v2.result.status, SolveStatus::kSat);
    EXPECT_TRUE(AllSatisfied(tautology, v2.result.model));
  }
}

TEST(Presolve, ConstantTrueQueryIsSatWithEmptyModel) {
  ExprPool pool;
  std::vector<ExprRef> as = {pool.True()};
  const PresolveVerdict v = Presolve(as);
  ASSERT_TRUE(v.definitive);
  EXPECT_EQ(v.result.status, SolveStatus::kSat);
  EXPECT_TRUE(v.result.model.empty());
}

// Every definitive verdict agrees with the full bit-blast + CDCL path.
TEST(Presolve, VerdictsAgreeWithCheckSatOnRandomQueries) {
  SplitMix64 rng(0x9e3779b9u);
  ExprPool pool;
  ExprRef vars[3] = {pool.Var("a", 8), pool.Var("b", 8), pool.Var("c", 8)};
  SolverOptions no_presolve;
  no_presolve.presolve = false;
  int definitive = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<ExprRef> as;
    const size_t len = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < len; ++i) {
      ExprRef v = vars[rng.NextBelow(3)];
      ExprRef k = pool.Const(rng.NextBelow(256), 8);
      switch (rng.NextBelow(5)) {
        case 0: as.push_back(pool.Ult(v, k)); break;
        case 1: as.push_back(pool.Ult(k, v)); break;
        case 2: as.push_back(pool.Eq(v, k)); break;
        case 3: as.push_back(pool.Eq(pool.And(v, k), pool.Const(0, 8))); break;
        default:
          as.push_back(pool.Eq(pool.Add(v, vars[rng.NextBelow(3)]), k));
      }
    }
    const PresolveVerdict v = Presolve(as);
    if (!v.definitive) continue;
    ++definitive;
    const SolveResult full = CheckSat(as, no_presolve);
    ASSERT_EQ(v.result.status, full.status);
    if (v.result.status == SolveStatus::kSat) {
      EXPECT_TRUE(AllSatisfied(as, v.result.model));
      // Both paths select the canonical model (CheckSat rewrites its CDCL
      // model through the same scan), so every shared variable agrees.
      for (const auto& [name, value] : v.result.model) {
        auto it = full.model.find(name);
        if (it != full.model.end()) EXPECT_EQ(it->second, value) << name;
      }
    }
  }
  EXPECT_GT(definitive, 0);  // the sweep must actually exercise verdicts
}

// --- Pipeline integration -------------------------------------------------

std::vector<QueryPipeline::Query> PresolveBatch(ExprPool& pool,
                                                SplitMix64& rng,
                                                size_t num_queries) {
  ExprRef vars[4] = {pool.Var("a", 8), pool.Var("b", 8), pool.Var("c", 8),
                     pool.Var("d", 8)};
  auto atom = [&]() -> ExprRef {
    ExprRef v = vars[rng.NextBelow(4)];
    ExprRef k = pool.Const(rng.NextBelow(256), 8);
    switch (rng.NextBelow(5)) {
      case 0: return pool.Ult(v, k);
      case 1: return pool.Ult(k, v);
      case 2: return pool.Eq(v, k);
      case 3:
        // zext comparisons: the forward pass refutes the out-of-range ones.
        return pool.Ult(pool.Const(200 + rng.NextBelow(120), 16),
                        pool.ZExt(v, 16));
      default:
        return pool.Eq(pool.Add(v, vars[rng.NextBelow(4)]), k);
    }
  };
  std::vector<QueryPipeline::Query> batch(num_queries);
  for (auto& q : batch) {
    const size_t len = 1 + rng.NextBelow(5);
    for (size_t i = 0; i < len; ++i) q.push_back(atom());
  }
  return batch;
}

// On vs off: same statuses, valid models, and the pre-solver actually
// fires. Cross-checking is forced on so every definitive verdict is
// re-proved against the full SAT path inside the run itself.
class PresolvePipeline : public ::testing::TestWithParam<int> {};

TEST_P(PresolvePipeline, OnEqualsOffAndVerdictsCrossCheck) {
  SplitMix64 rng(GetParam() * 6364136223846793005ull + 1442695040888963407ull);
  ExprPool pool;
  const auto batch = PresolveBatch(pool, rng, 24);

  PipelineOptions on;
  on.threads = 1;
  on.solver.presolve = true;
  on.solver.presolve_cross_check = true;  // force, even in release builds
  PipelineOptions off;
  off.threads = 1;
  off.solver.presolve = false;
  QueryPipeline p_on(on), p_off(off);
  const auto r_on = p_on.SolveBatch(batch);
  const auto r_off = p_off.SolveBatch(batch);
  ASSERT_EQ(r_on.size(), r_off.size());
  for (size_t i = 0; i < r_on.size(); ++i) {
    EXPECT_EQ(r_on[i].status, r_off[i].status) << "query " << i;
    if (r_on[i].status == SolveStatus::kSat) {
      EXPECT_TRUE(AllSatisfied(batch[i], r_on[i].model)) << "query " << i;
    }
  }
  // The batch is constructed to contain abstractly-refutable queries.
  EXPECT_GT(p_on.stats().presolve_definitive, 0u);
  EXPECT_EQ(p_on.stats().presolve_definitive,
            p_on.stats().presolve_unsat + p_on.stats().presolve_sat);
  EXPECT_EQ(p_off.stats().presolve_definitive, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolvePipeline, ::testing::Range(0, 8));

// Determinism: 1 thread vs 8 threads with the pre-solver on.
class PresolveThreadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(PresolveThreadDeterminism, OneVsEightThreads) {
  SplitMix64 rng(GetParam() * 2862933555777941757ull + 3037000493ull);
  ExprPool pool;
  const auto batch = PresolveBatch(pool, rng, 32);

  PipelineOptions serial;
  serial.threads = 1;
  serial.solver.presolve = true;
  PipelineOptions parallel = serial;
  parallel.threads = 8;
  QueryPipeline p1(serial), p8(parallel);
  const auto r1 = p1.SolveBatch(batch);
  const auto r8 = p8.SolveBatch(batch);
  ASSERT_EQ(r1.size(), r8.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].status, r8[i].status) << "query " << i;
    EXPECT_EQ(r1[i].model, r8[i].model) << "query " << i;
    EXPECT_EQ(r1[i].note, r8[i].note) << "query " << i;
  }
  EXPECT_EQ(p1.stats().presolve_definitive, p8.stats().presolve_definitive);
  EXPECT_EQ(p1.stats().presolve_unsat, p8.stats().presolve_unsat);
  EXPECT_EQ(p1.stats().presolve_sat, p8.stats().presolve_sat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveThreadDeterminism,
                         ::testing::Range(0, 6));

// Pre-solved verdicts enter the query cache: a repeat of the same batch
// is answered without any new pre-solve or solve work.
TEST(PresolveCache, RepeatBatchHitsCache) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  std::vector<QueryPipeline::Query> batch = {
      {pool.Ult(x, pool.Const(5, 8)), pool.Ult(pool.Const(10, 8), x)}};
  PipelineOptions opts;
  opts.threads = 1;
  QueryPipeline p(opts);
  const auto first = p.SolveBatch(batch);
  ASSERT_EQ(first[0].status, SolveStatus::kUnsat);
  const uint64_t definitive = p.stats().presolve_definitive;
  EXPECT_EQ(definitive, 1u);
  const auto again = p.SolveBatch(batch);
  EXPECT_EQ(again[0].status, SolveStatus::kUnsat);
  EXPECT_EQ(p.stats().presolve_definitive, definitive);  // served from cache
  EXPECT_GT(p.stats().cache_hits, 0u);
}

// --- CheckSat-level counters ----------------------------------------------

TEST(PresolveCounters, RewritesAndPinnedBitsFlowIntoSolveResult) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  // zext(x,16) & 0xff00 has all bits known-0: the range rules fold the
  // node and the blaster pins whatever known bits survive rewriting.
  ExprRef masked = pool.And(pool.ZExt(x, 16), pool.Const(0xff00, 16));
  std::vector<ExprRef> as = {
      pool.Eq(masked, pool.Const(0, 16)),
      pool.Ult(x, pool.Const(200, 8)),
  };
  SolverOptions with;
  with.presolve = true;
  const SolveResult r = CheckSat(as, with);
  EXPECT_EQ(r.status, SolveStatus::kSat);
  EXPECT_GT(r.presolve_rewrites, 0u);

  SolverOptions without;
  without.presolve = false;
  const SolveResult r_off = CheckSat(as, without);
  EXPECT_EQ(r_off.status, SolveStatus::kSat);
  EXPECT_EQ(r_off.presolve_rewrites, 0u);
  EXPECT_EQ(r_off.presolve_bits_pinned, 0u);
}

// --- Memoized variable sets (satellite) -----------------------------------

TEST(VarsMemo, CollectVarsMatchesAndMemoizes) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  ExprRef e = pool.Eq(pool.Add(x, y), pool.Const(9, 8));
  EXPECT_EQ(pool.CachedVars(e), nullptr);
  const std::vector<ExprRef>& vars = pool.VarsOf(e);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(pool.CachedVars(e), &vars);  // published, stable address
  // CollectVars routes through the same memo and agrees.
  std::vector<ExprRef> roots = {e};
  const std::vector<ExprRef> collected = CollectVars(roots);
  EXPECT_EQ(collected, vars);
  // Multi-root collection merges memoized per-root sets.
  ExprRef e2 = pool.Ult(y, pool.Var("z", 8));
  std::vector<ExprRef> both = {e, e2};
  const std::vector<ExprRef> merged = CollectVars(both);
  ASSERT_EQ(merged.size(), 3u);
}

}  // namespace
}  // namespace sbce::solver
