// Observability-layer tests: sink/tracer contract (null fast path),
// MetricsRegistry, JSON model round-trips, the JSON-lines exporter, the
// per-stage failure attribution pass, and the grid JSON export.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/attribution.h"
#include "src/obs/json.h"
#include "src/obs/jsonl.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_sink.h"
#include "src/tools/runner.h"

namespace sbce {
namespace {

using symex::ErrorStage;

// In-memory sink for assertions; stringifies field values.
class RecordingSink : public obs::TraceSink {
 public:
  struct Record {
    std::string type;
    std::string name;
    std::vector<std::pair<std::string, std::string>> fields;
  };

  void Event(std::string_view name,
             std::span<const obs::Field> fields) override {
    Push("event", name, fields);
  }
  void SpanBegin(std::string_view name, uint64_t,
                 std::span<const obs::Field> fields) override {
    Push("span_begin", name, fields);
  }
  void SpanEnd(std::string_view name, uint64_t, uint64_t) override {
    Push("span_end", name, {});
  }
  void Counter(std::string_view name, uint64_t delta) override {
    Record r;
    r.type = "counter";
    r.name.assign(name);
    r.fields.emplace_back("delta", std::to_string(delta));
    records.push_back(std::move(r));
  }

  size_t Count(std::string_view name) const {
    size_t n = 0;
    for (const auto& r : records) {
      if (r.name == name) ++n;
    }
    return n;
  }
  const Record* Find(std::string_view name) const {
    for (const auto& r : records) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }
  static std::string FieldValue(const Record& r, std::string_view key) {
    for (const auto& [k, v] : r.fields) {
      if (k == key) return v;
    }
    return {};
  }

  std::vector<Record> records;

 private:
  void Push(std::string_view type, std::string_view name,
            std::span<const obs::Field> fields) {
    Record r;
    r.type.assign(type);
    r.name.assign(name);
    for (const obs::Field& f : fields) {
      switch (f.kind) {
        case obs::Field::Kind::kUint:
          r.fields.emplace_back(std::string(f.key), std::to_string(f.u));
          break;
        case obs::Field::Kind::kInt:
          r.fields.emplace_back(std::string(f.key), std::to_string(f.i));
          break;
        case obs::Field::Kind::kStr:
          r.fields.emplace_back(std::string(f.key), std::string(f.s));
          break;
      }
    }
    records.push_back(std::move(r));
  }
};

TEST(Tracer, EmptyTracerIsInertAndCheap) {
  obs::Tracer tracer;  // no sink
  EXPECT_FALSE(tracer.enabled());
  tracer.Event("anything", {obs::Field::U("x", 1)});
  tracer.Counter("anything", 7);
  { obs::ScopedSpan span = tracer.Span("anything"); }
  // Nothing to observe — the contract is simply "no crash, no sink calls".
}

TEST(Tracer, ForwardsToSink) {
  RecordingSink sink;
  obs::Tracer tracer(&sink);
  EXPECT_TRUE(tracer.enabled());
  tracer.Event("ev", {obs::Field::U("a", 42), obs::Field::S("b", "hi")});
  tracer.Counter("ctr", 3);
  { obs::ScopedSpan span = tracer.Span("sp", {obs::Field::U("n", 1)}); }

  ASSERT_EQ(sink.records.size(), 4u);  // event, counter, span_begin, span_end
  const auto* ev = sink.Find("ev");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(RecordingSink::FieldValue(*ev, "a"), "42");
  EXPECT_EQ(RecordingSink::FieldValue(*ev, "b"), "hi");
  EXPECT_EQ(sink.Count("sp"), 2u);  // begin + end
}

TEST(Metrics, RegistryCountersAreStableAndSnapshot) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.Get("x.a");
  EXPECT_EQ(a, registry.Get("x.a"));  // same handle on re-lookup
  a->Add(5);
  a->Increment();
  registry.Get("x.b")->Add(2);
  EXPECT_EQ(registry.Value("x.a"), 6u);
  EXPECT_EQ(registry.Value("never"), 0u);

  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0], (std::pair<std::string, uint64_t>{"x.a", 6}));
  EXPECT_EQ(snapshot[1], (std::pair<std::string, uint64_t>{"x.b", 2}));

  RecordingSink sink;
  registry.Publish(obs::Tracer(&sink));
  EXPECT_EQ(sink.Count("x.a"), 1u);
  EXPECT_EQ(sink.Count("x.b"), 1u);
}

TEST(Json, RoundTripPreservesStructureAndU64) {
  obs::JsonValue v = obs::JsonValue::Object();
  v.Set("str", obs::JsonValue::Str("a \"quoted\"\nline\ttab"));
  v.Set("big", obs::JsonValue::U64(0xFFFF'FFFF'FFFF'FFFFull));
  v.Set("neg", obs::JsonValue::I64(-17));
  v.Set("flag", obs::JsonValue::Bool(true));
  v.Set("nothing", obs::JsonValue::Null());
  obs::JsonValue arr = obs::JsonValue::Array();
  arr.items.push_back(obs::JsonValue::U64(1));
  arr.items.push_back(obs::JsonValue::Str("two"));
  v.Set("arr", std::move(arr));

  const std::string text = obs::Dump(v);
  auto parsed = obs::ParseJson(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::Dump(*parsed), text);  // stable fixed point
  EXPECT_EQ(parsed->Find("big")->AsU64(), 0xFFFF'FFFF'FFFF'FFFFull);
  EXPECT_EQ(parsed->Find("neg")->AsI64(), -17);
  EXPECT_EQ(parsed->Find("str")->AsString(), "a \"quoted\"\nline\ttab");
  EXPECT_TRUE(parsed->Find("flag")->AsBool());
  EXPECT_TRUE(parsed->Find("nothing")->IsNull());
  ASSERT_EQ(parsed->Find("arr")->items.size(), 2u);
}

TEST(Json, BinaryBytesEscapeToValidUtf8) {
  // Field values can carry raw binary (generated argv inputs). The dump
  // must stay valid UTF-8/JSON: invalid bytes become \u00xx escapes while
  // well-formed multi-byte sequences (the ✓ outcome label) pass through.
  const std::string binary = std::string("a\x80\xff") + "\xE2\x9C\x93" + "z";
  const std::string text = obs::Dump(obs::JsonValue::Str(binary));
  EXPECT_NE(text.find("\\u0080"), std::string::npos);
  EXPECT_NE(text.find("\\u00ff"), std::string::npos);
  EXPECT_NE(text.find("\xE2\x9C\x93"), std::string::npos);
  for (char c : text) {
    // Only the checkmark's bytes may be non-ASCII.
    if (static_cast<unsigned char>(c) >= 0x80) {
      EXPECT_TRUE(c == '\xE2' || c == '\x9C' || c == '\x93') << text;
    }
  }
  auto parsed = obs::ParseJson(text);
  ASSERT_TRUE(parsed.has_value());
  // Bytes come back as U+0080/U+00FF code points (re-encoded as UTF-8),
  // not raw — the document, not the binary, is what round-trips.
  EXPECT_EQ(parsed->AsString(), std::string("a\xC2\x80\xC3\xBF")
                                    + "\xE2\x9C\x93" + "z");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(obs::ParseJson("{").has_value());
  EXPECT_FALSE(obs::ParseJson("{\"a\":1,}").has_value());
  EXPECT_FALSE(obs::ParseJson("[1 2]").has_value());
  EXPECT_FALSE(obs::ParseJson("\"unterminated").has_value());
  EXPECT_FALSE(obs::ParseJson("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(obs::ParseJson("01x").has_value());
  EXPECT_TRUE(obs::ParseJson("  {\"a\": [1, -2.5e3, null]} ").has_value());
}

TEST(Jsonl, EveryLineIsValidJson) {
  std::ostringstream out;
  obs::JsonlSink sink(&out);
  obs::Tracer tracer(&sink);
  tracer.Event("e1", {obs::Field::U("pc", 0x1234),
                      obs::Field::S("why", "needs \"escaping\"\n")});
  tracer.Counter("c1", 9);
  { obs::ScopedSpan span = tracer.Span("s1"); }
  EXPECT_EQ(sink.records(), 4u);

  std::istringstream in(out.str());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    auto parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.has_value()) << "bad JSONL line: " << line;
    ASSERT_NE(parsed->Find("t"), nullptr);
    ASSERT_NE(parsed->Find("name"), nullptr);
  }
  EXPECT_EQ(lines, 4u);

  // Field contents survive the escaping round trip.
  std::istringstream in2(out.str());
  std::getline(in2, line);
  auto first = obs::ParseJson(line);
  const obs::JsonValue* fields = first->Find("fields");
  ASSERT_NE(fields, nullptr);
  EXPECT_EQ(fields->Find("pc")->AsU64(), 0x1234u);
  EXPECT_EQ(fields->Find("why")->AsString(), "needs \"escaping\"\n");
}

// --- Attribution: one test per error stage --------------------------------

core::EngineResult SymbolicSeenResult() {
  core::EngineResult r;
  r.any_symbolic_seen = true;
  return r;
}

TEST(Attribution, Es0TaintMiss) {
  core::EngineResult r;  // nothing symbolic ever observed
  const tools::Outcome outcome = tools::Classify(r);
  ASSERT_EQ(outcome, tools::Outcome::kEs0);
  auto a = tools::Attribute(outcome, r);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->stage, "Es0");
  EXPECT_EQ(a->pc, 0u);
  EXPECT_NE(a->reason.find("not declared symbolic"), std::string::npos);
}

TEST(Attribution, Es1LiftGap) {
  auto r = SymbolicSeenResult();
  r.diag.Raise(ErrorStage::kEs1, "cannot lift push of symbolic data",
               0x2040);
  r.diag.Raise(ErrorStage::kEs2, "later propagation loss", 0x2080);
  const tools::Outcome outcome = tools::Classify(r);
  ASSERT_EQ(outcome, tools::Outcome::kEs1);
  auto a = tools::Attribute(outcome, r);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->stage, "Es1");
  EXPECT_EQ(a->pc, 0x2040u);
  EXPECT_EQ(a->reason, "cannot lift push of symbolic data");
}

TEST(Attribution, Es2FailedValidation) {
  auto r = SymbolicSeenResult();
  r.claimed = true;  // wrong test case: claim that never validated
  const tools::Outcome outcome = tools::Classify(r);
  ASSERT_EQ(outcome, tools::Outcome::kEs2);
  auto a = tools::Attribute(outcome, r);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->stage, "Es2");
  EXPECT_NE(a->reason.find("failed concrete validation"), std::string::npos);
}

TEST(Attribution, Es3UnsupportedTheory) {
  auto r = SymbolicSeenResult();
  r.diag.Raise(ErrorStage::kEs3,
               "constraint requires an unsupported floating-point theory",
               0x30C0);
  const tools::Outcome outcome = tools::Classify(r);
  ASSERT_EQ(outcome, tools::Outcome::kEs3);
  auto a = tools::Attribute(outcome, r);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->stage, "Es3");
  EXPECT_EQ(a->pc, 0x30C0u);
  EXPECT_NE(a->reason.find("floating-point"), std::string::npos);
}

TEST(Attribution, PartialSuccessNamesProvenance) {
  auto r = SymbolicSeenResult();
  r.claimed = true;
  r.provenance = core::ClaimProvenance::kSysEnv | core::ClaimProvenance::kLibEnv;
  const tools::Outcome outcome = tools::Classify(r);
  ASSERT_EQ(outcome, tools::Outcome::kP);
  auto a = tools::Attribute(outcome, r);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->stage, "P");
  EXPECT_NE(a->reason.find("sys-env+lib-env"), std::string::npos);
}

TEST(Attribution, AbortCarriesReason) {
  auto r = SymbolicSeenResult();
  r.aborted = true;
  r.abort_reason = "trace budget exceeded (path/instruction blowup)";
  const tools::Outcome outcome = tools::Classify(r);
  ASSERT_EQ(outcome, tools::Outcome::kE);
  auto a = tools::Attribute(outcome, r);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->stage, "E");
  EXPECT_EQ(a->reason, "trace budget exceeded (path/instruction blowup)");
}

TEST(Attribution, SuccessHasNoRecord) {
  auto r = SymbolicSeenResult();
  r.claimed = true;
  r.validated = true;
  EXPECT_FALSE(tools::Attribute(tools::Classify(r), r).has_value());
}

TEST(Attribution, JsonRoundTrip) {
  obs::Attribution a;
  a.stage = "Es3";
  a.pc = 0xDEADBEEFCAFEull;
  a.reason = "constraint requires an unsupported \"theory\"";
  a.detail = "constraint modeling failure";
  auto back = obs::AttributionFromJson(obs::AttributionToJson(a));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, a);

  EXPECT_FALSE(
      obs::AttributionFromJson(obs::JsonValue::Str("nope")).has_value());
  EXPECT_FALSE(obs::AttributionFromJson(obs::JsonValue::Object()).has_value());
}

// --- Grid JSON export round trip ------------------------------------------

TEST(GridJson, RoundTripParsesBack) {
  tools::GridResult grid;
  grid.matches = 1;
  grid.total = 2;
  {
    tools::CellResult ok;
    ok.bomb_id = "svd_argvlen";
    ok.tool = "Angr";
    ok.outcome = tools::Outcome::kOk;
    ok.expected = "OK";
    ok.matches_paper = true;
    grid.cells.push_back(std::move(ok));
  }
  {
    tools::CellResult bad;
    bad.bomb_id = "fp_round";
    bad.tool = "Triton";
    bad.outcome = tools::Outcome::kEs1;
    bad.expected = "Es1";
    bad.matches_paper = true;
    bad.attribution = obs::Attribution{
        "Es1", 0x2100, "unsupported opcode cvtsi2sd with symbolic operand",
        "instruction tracing / lifting failure"};
    grid.cells.push_back(std::move(bad));
  }

  const std::string text = obs::Dump(tools::GridToJson(grid));
  auto parsed_json = obs::ParseJson(text);
  ASSERT_TRUE(parsed_json.has_value());
  auto back = tools::GridFromJson(*parsed_json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->matches, 1);
  EXPECT_EQ(back->total, 2);
  ASSERT_EQ(back->cells.size(), 2u);
  EXPECT_EQ(back->cells[0].bomb_id, "svd_argvlen");
  EXPECT_EQ(back->cells[0].outcome, tools::Outcome::kOk);
  EXPECT_FALSE(back->cells[0].attribution.has_value());
  EXPECT_EQ(back->cells[1].outcome, tools::Outcome::kEs1);
  ASSERT_TRUE(back->cells[1].attribution.has_value());
  EXPECT_EQ(*back->cells[1].attribution, *grid.cells[1].attribution);

  EXPECT_FALSE(tools::GridFromJson(obs::JsonValue::Object()).has_value());
}

// --- End-to-end: a real cell emits trace records and an attribution -------

TEST(ObsIntegration, GridCellThreadsSinkThroughEveryLayer) {
  const auto* bomb = bombs::FindBomb("svd_time");
  ASSERT_NE(bomb, nullptr);
  auto profiles = tools::PaperTools();  // [0] = BAP: svd_time is Es0

  RecordingSink sink;
  tools::RunOptions options;
  options.trace_sink = &sink;
  auto grid = tools::RunGrid({{bomb, profiles[0]}}, options, 1);
  ASSERT_EQ(grid.cells.size(), 1u);
  const tools::CellResult& cell = grid.cells[0];

  // The reporting surface: a non-✓ outcome must carry an attribution
  // whose stage matches the cell label.
  ASSERT_NE(cell.outcome, tools::Outcome::kOk);
  ASSERT_TRUE(cell.attribution.has_value());
  EXPECT_EQ(cell.attribution->stage,
            std::string(tools::OutcomeLabel(cell.outcome)));
  EXPECT_FALSE(cell.attribution->reason.empty());

  // The sink saw the layers: runner, engine, VM, solver pipeline.
  EXPECT_GE(sink.Count("cell.begin"), 1u);
  EXPECT_GE(sink.Count("cell.done"), 1u);
  EXPECT_GE(sink.Count("engine.explore"), 2u);  // span begin+end
  EXPECT_GE(sink.Count("engine.round"), 1u);
  EXPECT_GE(sink.Count("vm.syscall"), 1u);
  EXPECT_GE(sink.Count("vm.run.done"), 1u);
  EXPECT_GE(sink.Count("solver.batch"), 1u);

  // And the metrics snapshot agrees with the recorded rounds.
  EXPECT_EQ(sink.Count("engine.round"), cell.engine.metrics.rounds);
}

TEST(ObsIntegration, BaselinePipelineOptionMatchesDefaultOutcome) {
  const auto* bomb = bombs::FindBomb("csp_stack");
  ASSERT_NE(bomb, nullptr);
  auto profiles = tools::PaperTools();
  tools::RunOptions baseline;
  baseline.baseline_pipeline = true;
  auto fast = tools::RunGrid({{bomb, profiles[0]}}).cells.at(0);
  auto slow = tools::RunGrid({{bomb, profiles[0]}}, baseline).cells.at(0);
  EXPECT_EQ(fast.outcome, slow.outcome);
  EXPECT_EQ(fast.engine.claimed_argv, slow.engine.claimed_argv);
  EXPECT_EQ(fast.engine.metrics.rounds, slow.engine.metrics.rounds);
  EXPECT_EQ(fast.engine.metrics.solver_queries,
            slow.engine.metrics.solver_queries);
  // Baseline disables the cache entirely.
  EXPECT_EQ(slow.engine.metrics.solver_cache_hits, 0u);
  EXPECT_EQ(slow.engine.metrics.solver_cache_misses, 0u);
}

}  // namespace
}  // namespace sbce
