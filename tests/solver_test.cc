// Solver stack tests: expression pool, evaluator, CDCL SAT core,
// bit-blaster (cross-checked against the evaluator), FP search, facade.
#include <gtest/gtest.h>

#include <bit>

#include "src/solver/bitblast.h"
#include "src/solver/fpsolver.h"
#include "src/solver/sat.h"
#include "src/solver/solver.h"
#include "src/support/bits.h"
#include "src/support/rng.h"

namespace sbce::solver {
namespace {

TEST(ExprPool, HashConsingGivesPointerEquality) {
  ExprPool pool;
  ExprRef a1 = pool.Var("a", 32);
  ExprRef a2 = pool.Var("a", 32);
  EXPECT_EQ(a1, a2);
  ExprRef s1 = pool.Add(a1, pool.Const(5, 32));
  ExprRef s2 = pool.Add(a2, pool.Const(5, 32));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, pool.Add(a1, pool.Const(6, 32)));
}

TEST(ExprPool, ConstantFolding) {
  ExprPool pool;
  ExprRef e = pool.Add(pool.Const(40, 8), pool.Const(2, 8));
  ASSERT_TRUE(e->IsConst());
  EXPECT_EQ(e->cval, 42u);
  // Wrap-around at width.
  ExprRef w = pool.Add(pool.Const(250, 8), pool.Const(10, 8));
  EXPECT_EQ(w->cval, 4u);
  // Comparison folds to 1-bit.
  ExprRef c = pool.Ult(pool.Const(3, 8), pool.Const(7, 8));
  EXPECT_EQ(c->width, 1);
  EXPECT_EQ(c->cval, 1u);
}

TEST(ExprPool, IdentitySimplifications) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 16);
  EXPECT_EQ(pool.Add(x, pool.Const(0, 16)), x);
  EXPECT_EQ(pool.Mul(x, pool.Const(1, 16)), x);
  EXPECT_EQ(pool.Mul(x, pool.Const(0, 16)), pool.Const(0, 16));
  EXPECT_EQ(pool.Xor(x, x), pool.Const(0, 16));
  EXPECT_EQ(pool.Eq(x, x), pool.True());
  EXPECT_EQ(pool.Not(pool.Not(x)), x);
  EXPECT_EQ(pool.Sub(x, x), pool.Const(0, 16));
}

TEST(ExprPool, ExtractThroughExtensions) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef z = pool.ZExt(x, 32);
  EXPECT_EQ(pool.Extract(z, 7, 0), x);
  ExprRef ee = pool.Extract(pool.Extract(pool.Var("y", 32), 23, 8), 7, 0);
  EXPECT_EQ(ee->kind, Kind::kExtract);
  EXPECT_EQ(ee->p1, 8u);
  EXPECT_EQ(ee->p0, 15u);
}

TEST(ExprPool, ToStringIsReadable) {
  ExprPool pool;
  ExprRef e = pool.Eq(pool.Add(pool.Var("x", 8), pool.Const(1, 8)),
                      pool.Const(7, 8));
  EXPECT_EQ(ToString(e), "(= (bvadd x #x1[8]) #x7[8])");
}

TEST(Eval, SignedOps) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  Assignment a{{"x", 0xFFu}};  // -1 as signed 8-bit
  EXPECT_EQ(Evaluate(pool.Binary(Kind::kSlt, x, pool.Const(0, 8)), a), 1u);
  EXPECT_EQ(Evaluate(pool.Binary(Kind::kAShr, x, pool.Const(4, 8)), a),
            0xFFu);
  EXPECT_EQ(Evaluate(pool.SExt(x, 16), a), 0xFFFFu);
  EXPECT_EQ(Evaluate(pool.ZExt(x, 16), a), 0x00FFu);
}

TEST(Eval, DivisionByZeroSemantics) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef zero = pool.Const(0, 8);
  Assignment a{{"x", 10}};
  EXPECT_EQ(Evaluate(pool.Binary(Kind::kUDiv, x, zero), a), 0xFFu);
  EXPECT_EQ(Evaluate(pool.Binary(Kind::kURem, x, zero), a), 10u);
}

TEST(Sat, TrivialSatAndUnsat) {
  SatSolver s;
  const int a = s.NewVar();
  const int b = s.NewVar();
  s.AddClause({MkLit(a), MkLit(b)});
  s.AddClause({MkLit(a, true)});
  ASSERT_EQ(s.Solve(), SatStatus::kSat);
  EXPECT_FALSE(s.ValueOf(a));
  EXPECT_TRUE(s.ValueOf(b));
}

TEST(Sat, EmptyClauseIsUnsat) {
  SatSolver s;
  s.AddClause({});
  EXPECT_EQ(s.Solve(), SatStatus::kUnsat);
}

TEST(Sat, ContradictionIsUnsat) {
  SatSolver s;
  const int a = s.NewVar();
  s.AddClause({MkLit(a)});
  s.AddClause({MkLit(a, true)});
  EXPECT_EQ(s.Solve(), SatStatus::kUnsat);
}

TEST(Sat, PigeonholeThreeIntoTwoIsUnsat) {
  // 3 pigeons, 2 holes: p[i][h]. Each pigeon somewhere; no two share.
  SatSolver s;
  int p[3][2];
  for (auto& row : p) {
    for (auto& v : row) v = s.NewVar();
  }
  for (int i = 0; i < 3; ++i) {
    s.AddClause({MkLit(p[i][0]), MkLit(p[i][1])});
  }
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.AddClause({MkLit(p[i][h], true), MkLit(p[j][h], true)});
      }
    }
  }
  EXPECT_EQ(s.Solve(), SatStatus::kUnsat);
}

// Property test: random 3-CNF instances, CDCL answer cross-checked against
// brute force over up to 2^12 assignments.
class RandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnf, MatchesBruteForce) {
  SplitMix64 rng(GetParam() * 977 + 13);
  const int num_vars = 6 + static_cast<int>(rng.NextBelow(5));
  const int num_clauses = 10 + static_cast<int>(rng.NextBelow(30));
  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k) {
      cl.push_back(MkLit(static_cast<int>(rng.NextBelow(num_vars)),
                         rng.NextBelow(2) == 0));
    }
    clauses.push_back(cl);
  }
  bool brute_sat = false;
  for (uint32_t m = 0; m < (1u << num_vars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& cl : clauses) {
      bool any = false;
      for (Lit l : cl) {
        const bool val = ((m >> LitVar(l)) & 1) != 0;
        if (val != LitNegated(l)) any = true;
      }
      if (!any) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }
  SatSolver s;
  for (int v = 0; v < num_vars; ++v) s.NewVar();
  for (auto& cl : clauses) s.AddClause(cl);
  const SatStatus st = s.Solve();
  EXPECT_EQ(st, brute_sat ? SatStatus::kSat : SatStatus::kUnsat);
  if (st == SatStatus::kSat) {
    // The returned model must satisfy every clause.
    for (const auto& cl : clauses) {
      bool any = false;
      for (Lit l : cl) {
        if (s.ValueOf(LitVar(l)) != LitNegated(l)) any = true;
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf, ::testing::Range(0, 40));

// Property test: for every binary operator and a spread of widths, the
// bit-blasted circuit agrees with the evaluator on random operand values.
struct BlastCase {
  Kind kind;
  unsigned width;
};

class BlastAgainstEval : public ::testing::TestWithParam<BlastCase> {};

TEST_P(BlastAgainstEval, CircuitMatchesEvaluator) {
  const auto [kind, width] = GetParam();
  SplitMix64 rng(static_cast<uint64_t>(kind) * 1000 + width);
  ExprPool pool;
  ExprRef x = pool.Var("x", width);
  ExprRef y = pool.Var("y", width);
  ExprRef expr = pool.Binary(kind, x, y);
  for (int trial = 0; trial < 6; ++trial) {
    uint64_t xv = TruncToWidth(rng.Next(), width);
    uint64_t yv = TruncToWidth(rng.Next(), width);
    if (trial == 0) yv = 0;               // divide-by-zero corner
    if (trial == 1) xv = yv;              // equality corner
    if (kind == Kind::kShl || kind == Kind::kLShr || kind == Kind::kAShr) {
      if (trial < 4) yv %= (width + 2);   // mostly in-range shifts
    }
    const Assignment a{{"x", xv}, {"y", yv}};
    const uint64_t expected = Evaluate(expr, a);
    // Assert x == xv ∧ y == yv ∧ expr == expected  → must be SAT.
    std::vector<ExprRef> sat_case = {
        pool.Eq(x, pool.Const(xv, width)),
        pool.Eq(y, pool.Const(yv, width)),
        pool.Eq(expr, pool.Const(expected, expr->width)),
    };
    auto res = CheckSat(sat_case);
    EXPECT_EQ(res.status, SolveStatus::kSat)
        << KindName(kind) << " w=" << width << " x=" << xv << " y=" << yv;
    // And pinning the result to a *wrong* value must be UNSAT.
    const uint64_t wrong = TruncToWidth(expected + 1, expr->width);
    std::vector<ExprRef> unsat_case = {
        pool.Eq(x, pool.Const(xv, width)),
        pool.Eq(y, pool.Const(yv, width)),
        pool.Eq(expr, pool.Const(wrong, expr->width)),
    };
    auto res2 = CheckSat(unsat_case);
    EXPECT_EQ(res2.status, SolveStatus::kUnsat)
        << KindName(kind) << " w=" << width << " x=" << xv << " y=" << yv;
  }
}

std::vector<BlastCase> AllBlastCases() {
  const Kind kinds[] = {Kind::kAdd,  Kind::kSub,  Kind::kMul, Kind::kUDiv,
                        Kind::kURem, Kind::kSDiv, Kind::kSRem, Kind::kAnd,
                        Kind::kOr,   Kind::kXor,  Kind::kShl, Kind::kLShr,
                        Kind::kAShr, Kind::kEq,   Kind::kUlt, Kind::kSlt,
                        Kind::kUle,  Kind::kSle};
  std::vector<BlastCase> cases;
  for (Kind k : kinds) {
    for (unsigned w : {1u, 5u, 8u, 13u, 32u}) {
      cases.push_back({k, w});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    OpsByWidth, BlastAgainstEval, ::testing::ValuesIn(AllBlastCases()),
    [](const ::testing::TestParamInfo<BlastCase>& info) {
      std::string name(KindName(info.param.kind));
      if (name == "=") name = "eq";
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_w" + std::to_string(info.param.width);
    });

TEST(Facade, SolvesLinearEquation) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 32);
  // x + 3 == 10
  std::vector<ExprRef> as = {
      pool.Eq(pool.Add(x, pool.Const(3, 32)), pool.Const(10, 32))};
  auto res = CheckSat(as);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.at("x"), 7u);
}

TEST(Facade, SolvesNonLinearEquation) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 16);
  // x * x == 1521 (39^2), x < 200 — forces the "natural" root.
  std::vector<ExprRef> as = {
      pool.Eq(pool.Mul(x, x), pool.Const(1521, 16)),
      pool.Ult(x, pool.Const(200, 16)),
  };
  auto res = CheckSat(as);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.at("x") * res.model.at("x") % 65536, 1521u);
}

TEST(Facade, DetectsUnsatConjunction) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  std::vector<ExprRef> as = {
      pool.Ult(x, pool.Const(5, 8)),
      pool.Ult(pool.Const(10, 8), x),
  };
  EXPECT_EQ(CheckSat(as).status, SolveStatus::kUnsat);
}

TEST(Facade, ModelsIteAndExtract) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 16);
  // (x > 100 ? x - 100 : x) == 7 with x > 100 forced.
  ExprRef cond = pool.Ult(pool.Const(100, 16), x);
  ExprRef branch = pool.Ite(cond, pool.Sub(x, pool.Const(100, 16)), x);
  std::vector<ExprRef> as = {cond, pool.Eq(branch, pool.Const(7, 16))};
  auto res = CheckSat(as);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.at("x"), 107u);
}

TEST(Facade, ConflictBudgetReturnsUnknown) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 32);
  ExprRef y = pool.Var("y", 32);
  // Hard instance: factoring a prime with an overflow-free 64-bit product
  // (UNSAT, needs real search well beyond five conflicts).
  std::vector<ExprRef> as = {
      pool.Eq(pool.Mul(pool.ZExt(x, 64), pool.ZExt(y, 64)),
              pool.Const(4294967291ull, 64)),
      pool.Ult(pool.Const(1, 32), x),
      pool.Ult(pool.Const(1, 32), y),
      pool.Binary(Kind::kUle, x, y),
  };
  SolverOptions opts;
  opts.max_conflicts = 5;
  auto res = CheckSat(as, opts);
  EXPECT_EQ(res.status, SolveStatus::kUnknown);
}

TEST(FpSearch, FindsRoundingAbsorbedValue) {
  ExprPool pool;
  // 1024.0 + x == 1024.0  ∧  x > 0.0 — the fp_round bomb condition.
  ExprRef x = pool.Var("x", 64);
  const uint64_t k1024 = std::bit_cast<uint64_t>(1024.0);
  const uint64_t kZero = std::bit_cast<uint64_t>(0.0);
  std::vector<ExprRef> as = {
      pool.Binary(Kind::kFEq, pool.Binary(Kind::kFAdd, pool.Const(k1024, 64), x),
                  pool.Const(k1024, 64)),
      pool.Binary(Kind::kFLt, pool.Const(kZero, 64), x),
  };
  auto res = FpSearch(as);
  ASSERT_TRUE(res.found);
  const double xv = std::bit_cast<double>(res.model.at("x"));
  EXPECT_GT(xv, 0.0);
  EXPECT_EQ(1024.0 + xv, 1024.0);
}

TEST(FpSearch, DoesNotFakeInfeasible) {
  ExprPool pool;
  // x * x == -1.0 over doubles: infeasible; search must not "find" it.
  ExprRef x = pool.Var("x", 64);
  const uint64_t minus1 = std::bit_cast<uint64_t>(-1.0);
  std::vector<ExprRef> as = {
      pool.Binary(Kind::kFEq, pool.Binary(Kind::kFMul, x, x),
                  pool.Const(minus1, 64)),
  };
  FpSearchOptions opts;
  opts.max_iterations = 20'000;
  auto res = FpSearch(as, opts);
  EXPECT_FALSE(res.found);
}

TEST(FpSearch, RoutedThroughFacade) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 64);
  // to_sint(from_sint-ish round trip): find double equal to 7.0.
  const uint64_t k7 = std::bit_cast<uint64_t>(7.0);
  std::vector<ExprRef> as = {
      pool.Binary(Kind::kFEq, x, pool.Const(k7, 64))};
  auto res = CheckSat(as);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(std::bit_cast<double>(res.model.at("x")), 7.0);
}

}  // namespace
}  // namespace sbce::solver
