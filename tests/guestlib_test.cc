// Guest library validation: run the .ltext routines in the VM and compare
// against host references (including FIPS test vectors for the crypto).
#include <gtest/gtest.h>

#include <cmath>

#include "src/crypto/aes.h"
#include "src/crypto/sha1.h"
#include "src/guestlib/guestlib.h"
#include "src/isa/assembler.h"
#include "src/vm/devices.h"
#include "src/vm/machine.h"

namespace sbce::guestlib {
namespace {

struct GuestRun {
  vm::RunResult result;
  std::unique_ptr<vm::Machine> machine;
};

GuestRun RunGuest(const std::string& main_src,
                  std::vector<std::string> argv = {"prog"}) {
  const std::string src = main_src + EmitGuestLib();
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  auto machine = std::make_unique<vm::Machine>(img.value(), std::move(argv));
  GuestRun run;
  run.result = machine->Run();
  run.machine = std::move(machine);
  return run;
}

TEST(GuestLib, StrlenAndAtoi) {
  auto run = RunGuest(R"(
    .entry main
    main:
      lea r1, str
      call gl_strlen
      mov r10, r0
      lea r1, num
      call gl_atoi
      ; exit(len * 1000 + value)
      muli r10, r10, 1000
      add r1, r10, r0
      sys 0
    .data
    str: .asciz "hello"
    num: .asciz "42"
  )");
  EXPECT_EQ(run.result.exit_code, 5 * 1000 + 42);
}

TEST(GuestLib, PrintU64WritesDecimal) {
  auto run = RunGuest(R"(
    .entry main
    main:
      movi r1, 90210
      call gl_print_u64
      movi r1, 0
      sys 0
  )");
  EXPECT_EQ(run.result.stdout_text, "90210");
}

TEST(GuestLib, PrintU64Zero) {
  auto run = RunGuest(R"(
    .entry main
    main:
      movi r1, 0
      call gl_print_u64
      movi r1, 0
      sys 0
  )");
  EXPECT_EQ(run.result.stdout_text, "0");
}

TEST(GuestLib, SinPolynomialAccuracy) {
  // sin(0.5) via the guest polynomial, result bits stored to memory.
  auto run = RunGuest(R"(
    .entry main
    main:
      lea r4, input
      fld f0, [r4+0]
      call gl_sin
      lea r4, output
      fst f0, [r4+0]
      movi r1, 0
      sys 0
    .data
    input:  .quad 0x3FE0000000000000   ; 0.5
    output: .space 8
  )");
  auto out_addr = [&] {
    // .data base is 0x100000; input at +0, output at +8.
    return 0x100000 + 8;
  }();
  const double guest = std::bit_cast<double>(
      run.machine->root().mem.ReadU64(out_addr));
  EXPECT_NEAR(guest, std::sin(0.5), 1e-6);
}

TEST(GuestLib, RandIsDeterministicInSeed) {
  const std::string src = R"(
    .entry main
    main:
      movi r1, 7
      call gl_srand
      call gl_rand
      andi r1, r0, 0xff
      sys 0
  )";
  auto r1 = RunGuest(src);
  auto r2 = RunGuest(src);
  EXPECT_EQ(r1.result.exit_code, r2.result.exit_code);
  // Host-side expectation: kRandRounds LCG steps.
  uint64_t state = 7;
  for (int i = 0; i < kRandRounds; ++i) {
    state ^= state >> 13;
    state = (state * ((state >> 7) | 1) + 12345u) & 0x7fffffffu;
  }
  EXPECT_EQ(static_cast<uint64_t>(r1.result.exit_code),
            state & 0xff);
}

TEST(GuestLib, UnwindDeliverRoundTrips) {
  auto run = RunGuest(R"(
    .entry main
    main:
      movi r1, 123
      call gl_unwind_deliver
      mov r1, r0
      sys 0
  )");
  EXPECT_EQ(run.result.exit_code, 123);
}

TEST(GuestLib, Sha1MatchesHostAndFips) {
  // Guest SHA1("abc") written to .data; compare with host + known vector.
  auto run = RunGuest(R"(
    .entry main
    main:
      lea r1, msg
      movi r2, 3
      lea r3, digest
      call gl_sha1
      movi r1, 0
      sys 0
    .data
    msg:    .asciz "abc"
    digest: .space 20
  )");
  const uint64_t digest_addr = 0x100000 + 4;
  std::array<uint8_t, 20> guest;
  for (size_t i = 0; i < guest.size(); ++i) {
    guest[i] = run.machine->root().mem.ReadU8(digest_addr + i);
  }
  const uint8_t abc[3] = {'a', 'b', 'c'};
  const auto host = crypto::Sha1(abc);
  EXPECT_EQ(std::vector<uint8_t>(guest.begin(), guest.end()),
            std::vector<uint8_t>(host.begin(), host.end()));
  // FIPS 180-1 test vector for "abc".
  const std::array<uint8_t, 20> fips = {
      0xa9, 0x99, 0x3e, 0x36, 0x47, 0x06, 0x81, 0x6a, 0xba, 0x3e,
      0x25, 0x71, 0x78, 0x50, 0xc2, 0x6c, 0x9c, 0xd0, 0xd8, 0x9d};
  EXPECT_EQ(guest, fips);
}

TEST(GuestLib, Sha1EmptyMessage) {
  auto run = RunGuest(R"(
    .entry main
    main:
      lea r1, msg
      movi r2, 0
      lea r3, digest
      call gl_sha1
      movi r1, 0
      sys 0
    .data
    msg:    .byte 0
    digest: .space 20
  )");
  const uint64_t digest_addr = 0x100000 + 1;
  std::array<uint8_t, 20> guest;
  for (size_t i = 0; i < guest.size(); ++i) {
    guest[i] = run.machine->root().mem.ReadU8(digest_addr + i);
  }
  const auto host = crypto::Sha1({});
  EXPECT_TRUE(std::equal(guest.begin(), guest.end(), host.begin()));
}

TEST(GuestLib, Aes128MatchesHostAndFips) {
  auto run = RunGuest(R"(
    .entry main
    main:
      lea r1, key
      lea r2, pt
      lea r3, ct
      call gl_aes128
      movi r1, 0
      sys 0
    .data
    key: .byte 0x00,0x01,0x02,0x03,0x04,0x05,0x06,0x07,0x08,0x09,0x0a,0x0b,0x0c,0x0d,0x0e,0x0f
    pt:  .byte 0x00,0x11,0x22,0x33,0x44,0x55,0x66,0x77,0x88,0x99,0xaa,0xbb,0xcc,0xdd,0xee,0xff
    ct:  .space 16
  )");
  ASSERT_FALSE(run.result.faulted) << run.result.fault_reason;
  const uint64_t ct_addr = 0x100000 + 32;
  std::array<uint8_t, 16> guest;
  for (size_t i = 0; i < guest.size(); ++i) {
    guest[i] = run.machine->root().mem.ReadU8(ct_addr + i);
  }
  crypto::AesKey key;
  crypto::AesBlock pt;
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<uint8_t>(i);
    pt[i] = static_cast<uint8_t>(i * 0x11);
  }
  const auto host = crypto::Aes128Encrypt(key, pt);
  EXPECT_TRUE(std::equal(guest.begin(), guest.end(), host.begin()));
  // FIPS 197 Appendix C.1 ciphertext.
  const std::array<uint8_t, 16> fips = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                        0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                        0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(guest, fips);
}

TEST(GuestLibHost, SboxKnownValues) {
  EXPECT_EQ(crypto::AesSbox(0x00), 0x63);
  EXPECT_EQ(crypto::AesSbox(0x01), 0x7c);
  EXPECT_EQ(crypto::AesSbox(0x53), 0xed);
  EXPECT_EQ(crypto::AesSbox(0xff), 0x16);
}

TEST(GuestLibHost, GfMulProperties) {
  // Multiplication by 1 is identity; distributes over xor (sampled).
  for (int a = 0; a < 256; a += 7) {
    EXPECT_EQ(crypto::GfMul(static_cast<uint8_t>(a), 1), a);
    for (int b = 0; b < 256; b += 13) {
      for (int c = 0; c < 256; c += 29) {
        EXPECT_EQ(crypto::GfMul(static_cast<uint8_t>(a),
                                static_cast<uint8_t>(b ^ c)),
                  crypto::GfMul(static_cast<uint8_t>(a),
                                static_cast<uint8_t>(b)) ^
                      crypto::GfMul(static_cast<uint8_t>(a),
                                    static_cast<uint8_t>(c)));
      }
    }
  }
}

}  // namespace
}  // namespace sbce::guestlib
