// Unit tests for the SBVM ISA: codec round-trips, assembler syntax and
// error paths, image serialization, disassembly.
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/isa/instruction.h"

namespace sbce::isa {
namespace {

TEST(InstructionCodec, RoundTripsAllFields) {
  Instruction in;
  in.op = Opcode::kAddI;
  in.rd = 3;
  in.rs1 = 7;
  in.rs2 = 0;
  in.imm = -12345;
  uint8_t buf[kInstrBytes];
  Encode(in, buf);
  auto back = Decode(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), in);
}

TEST(InstructionCodec, RejectsUnknownOpcode) {
  uint8_t buf[kInstrBytes] = {0xff, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(Decode(buf).ok());
}

TEST(InstructionCodec, RejectsTruncated) {
  uint8_t buf[4] = {0, 0, 0, 0};
  EXPECT_FALSE(Decode(std::span<const uint8_t>(buf, 4)).ok());
}

TEST(InstructionCodec, RejectsBadRegisterIndex) {
  Instruction in;
  in.op = Opcode::kMov;
  in.rd = 20;  // only 16 GPRs
  uint8_t buf[kInstrBytes];
  Encode(in, buf);
  EXPECT_FALSE(Decode(buf).ok());
}

// Property: every opcode round-trips through encode/decode with benign
// register fields.
class OpcodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeRoundTrip, EncodeDecode) {
  Instruction in;
  in.op = static_cast<Opcode>(GetParam());
  in.rd = 1;
  in.rs1 = 2;
  in.rs2 = 3;
  in.imm = 42;
  uint8_t buf[kInstrBytes];
  Encode(in, buf);
  auto back = Decode(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), in);
  // Disassembly renders something non-empty for every opcode.
  EXPECT_FALSE(Disassemble(back.value(), 0x1000).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range(0, static_cast<int>(Opcode::kOpcodeCount)));

TEST(Assembler, AssemblesBasicProgram) {
  auto img = Assemble(R"(
    .entry main
    main:
      movi r1, 41
      addi r1, r1, 1
      halt
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  ASSERT_EQ(img.value().sections().size(), 1u);
  EXPECT_EQ(img.value().sections()[0].data.size(), 3 * kInstrBytes);
  EXPECT_EQ(img.value().entry(), 0x1000u);
}

TEST(Assembler, ResolvesForwardAndBackwardLabels) {
  auto img = Assemble(R"(
    .entry main
    main:
      movi r1, 0
    loop:
      addi r1, r1, 1
      cmpltui r2, r1, 10
      bnz r2, loop
      jmp done
      movi r1, 99     ; skipped
    done:
      halt
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  auto loop = img.value().FindSymbol("loop");
  ASSERT_TRUE(loop.has_value());
  EXPECT_EQ(*loop, 0x1000u + kInstrBytes);
}

TEST(Assembler, DataDirectives) {
  auto img = Assemble(R"(
    .entry main
    main:
      halt
    .data
    bytes: .byte 1, 2, 0xff
    words: .word 0x12345678
    quads: .quad 0x1122334455667788, main
    text:  .asciz "hi\n"
    blank: .space 5
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  ASSERT_EQ(img.value().sections().size(), 2u);
  const auto& data = img.value().sections()[1].data;
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[2], 0xff);
  EXPECT_EQ(data[3], 0x78);  // little-endian word
  // .quad main resolves to the text base.
  EXPECT_EQ(data[3 + 4 + 8 - 1], 0x11);  // high byte of first quad
  const size_t quad2 = 3 + 4 + 8;
  EXPECT_EQ(data[quad2], 0x00);
  EXPECT_EQ(data[quad2 + 1], 0x10);  // 0x1000 little-endian
  const size_t str = quad2 + 8;
  EXPECT_EQ(data[str], 'h');
  EXPECT_EQ(data[str + 2], '\n');
  EXPECT_EQ(data[str + 3], 0);
}

TEST(Assembler, EquConstants) {
  auto img = Assemble(R"(
    .equ MAGIC, 0x32
    .entry main
    main:
      movi r1, MAGIC
      halt
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  auto in = Decode(std::span<const uint8_t>(
      img.value().sections()[0].data.data(), kInstrBytes));
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in.value().imm, 0x32);
}

TEST(Assembler, MemoryOperands) {
  auto img = Assemble(R"(
    .entry main
    main:
      ld8 r1, [sp+16]
      st4 r1, [r2-8]
      ldx8 r3, [r1+r2]
      halt
  )");
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  const auto& text = img.value().sections()[0].data;
  auto i0 = Decode(std::span<const uint8_t>(text.data(), kInstrBytes));
  ASSERT_TRUE(i0.ok());
  EXPECT_EQ(i0.value().op, Opcode::kLd8);
  EXPECT_EQ(i0.value().rs1, kRegSp);
  EXPECT_EQ(i0.value().imm, 16);
  auto i1 =
      Decode(std::span<const uint8_t>(text.data() + kInstrBytes, kInstrBytes));
  ASSERT_TRUE(i1.ok());
  EXPECT_EQ(i1.value().imm, -8);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto img = Assemble("movi r1, 1\nbogus r1\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.status().message().find("line 2"), std::string::npos);
}

TEST(Assembler, RejectsDuplicateLabel) {
  EXPECT_FALSE(Assemble("a: nop\na: nop\n").ok());
}

TEST(Assembler, RejectsUndefinedLabel) {
  EXPECT_FALSE(Assemble("jmp nowhere\n").ok());
}

TEST(Assembler, RejectsDataOutsideSections) {
  EXPECT_FALSE(Assemble(".text\n.asciz no_quotes\n").ok());
}

TEST(Image, SerializeDeserializeRoundTrip) {
  auto img = Assemble(R"(
    .entry main
    main:
      movi r1, 7
      halt
    .data
    d: .quad 99
  )");
  ASSERT_TRUE(img.ok());
  auto bytes = img.value().Serialize();
  auto back = isa::BinaryImage::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().entry(), img.value().entry());
  ASSERT_EQ(back.value().sections().size(), 2u);
  EXPECT_EQ(back.value().sections()[0].data,
            img.value().sections()[0].data);
  EXPECT_EQ(back.value().sections()[1].vaddr, 0x100000u);
  // Symbols are stripped from the wire format.
  EXPECT_TRUE(back.value().symbols().empty());
}

TEST(Image, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {'n', 'o', 'p', 'e', 1, 2, 3};
  EXPECT_FALSE(isa::BinaryImage::Deserialize(junk).ok());
}

}  // namespace
}  // namespace sbce::isa
