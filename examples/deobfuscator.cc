// Deobfuscation demo (the paper's second application scenario, §V.D.2):
// detect opaque predicates — branches that always go one way — so their
// dead arms can be eliminated.
//
// Method: explore the binary concolically; for every symbolic branch,
// check whether the engine could ever negate it (SAT on the negated
// condition). UNSAT negations are opaque predicates; their untaken arms
// are bogus code.
#include <cstdio>
#include <map>

#include "src/core/engine.h"
#include "src/isa/assembler.h"
#include "src/solver/solver.h"
#include "src/symex/executor.h"
#include "src/tools/profiles.h"
#include "src/vm/machine.h"

int main() {
  using namespace sbce;
  // An "obfuscated" routine: two opaque predicates guard bogus blocks.
  //   (x*x + x) is always even  -> "odd" arm is dead
  //   (x | 1) != 0 always       -> "zero" arm is dead
  // and one real predicate (x == 77) guards live code.
  constexpr std::string_view kObfuscated = R"(
    .entry main
    main:
      ld8 r9, [r2+8]
      ld1 r10, [r9+0]      ; x = first input byte
      ; opaque 1: (x*x + x) & 1 == 0 always
      mul r4, r10, r10
      add r4, r4, r10
      andi r4, r4, 1
      bz r4, opq1_done     ; always taken
      movi r5, 0xDEAD      ; bogus block A
      movi r5, 0xBEEF
    opq1_done:
      ; opaque 2: (x | 1) != 0 always
      ori r4, r10, 1
      bnz r4, opq2_done    ; always taken
      movi r5, 0xFEED      ; bogus block B
    opq2_done:
      ; real predicate
      cmpeqi r4, r10, 77
      bz r4, not77
      sys 16               ; live, input-dependent block
    not77:
      movi r1, 0
      sys 0
  )";

  auto image_or = isa::Assemble(kObfuscated);
  SBCE_CHECK(image_or.ok());
  const isa::BinaryImage image = std::move(image_or).value();

  // One traced run + symbolic walk gives us every branch condition.
  vm::Machine machine(image, {"prog", "a"});
  solver::ExprPool pool;
  symex::SymexConfig cfg;  // ideal-style, everything modeled
  cfg.addr_policy = symex::SymAddrPolicy::kExpandWindow;
  symex::TraceExecutor exec(&pool, cfg);
  std::vector<solver::ExprRef> argv_bytes = {pool.Var("x", 8)};
  exec.AddSymbolicBytes(machine.ArgvStringAddr(1), argv_bytes);
  std::vector<vm::TraceEvent> events;
  machine.set_trace_hook(
      [&](const vm::TraceEvent& ev) { events.push_back(ev); });
  machine.Run();
  exec.Execute(events);

  std::printf("opaque-predicate scan over %zu symbolic branches:\n\n",
              exec.state().path().size());
  int opaque = 0;
  for (const auto& pc_rec : exec.state().path()) {
    std::vector<solver::ExprRef> negated = {pool.Not(pc_rec.cond)};
    auto res = solver::CheckSat(negated);
    const bool is_opaque = res.status == solver::SolveStatus::kUnsat;
    opaque += is_opaque ? 1 : 0;
    std::printf("  branch at 0x%llx: negation %s -> %s\n",
                static_cast<unsigned long long>(pc_rec.pc),
                is_opaque ? "UNSAT" : "satisfiable",
                is_opaque ? "OPAQUE (dead arm, safe to eliminate)"
                          : "real predicate (keep both arms)");
  }
  std::printf("\n%d opaque predicate(s) found; the paper notes this very "
              "technique\nfails when opaque predicates are built from the "
              "studied challenges.\n",
              opaque);
  return opaque == 2 ? 0 : 1;
}
