// Bomb lab: inspect and attack any bomb from the dataset with any tool
// profile — the workflow a user of this library actually runs.
//
//   example_bomb_lab                 # list bombs and tools
//   example_bomb_lab arr_one         # disassemble + attack with Ideal
//   example_bomb_lab arr_one Angr    # attack with a specific tool model
#include <cstdio>
#include <cstring>

#include "src/bombs/bombs.h"
#include "src/isa/objdump.h"
#include "src/service/api.h"
#include "src/tools/profiles.h"

int main(int argc, char** argv) {
  using namespace sbce;
  if (argc < 2) {
    std::printf("usage: %s <bomb-id> [tool]\n\nbombs:\n", argv[0]);
    for (const auto& bomb : bombs::AllBombs()) {
      std::printf("  %-16s %s\n", bomb.id.c_str(), bomb.challenge.c_str());
    }
    std::printf("\ntools: BAP Triton Angr Angr-NoLib Ideal (default)\n");
    return 0;
  }
  const auto* bomb = bombs::FindBomb(argv[1]);
  if (bomb == nullptr) {
    std::printf("unknown bomb '%s'\n", argv[1]);
    return 1;
  }
  const auto tool =
      tools::ProfileByName(argc > 2 ? argv[2] : "Ideal").value_or(
          tools::Ideal());

  const auto image = bombs::BuildBomb(*bomb);
  std::printf("=== %s — %s ===\n\n", bomb->id.c_str(),
              bomb->challenge.c_str());

  // Show the interesting part of the binary: the main text section.
  for (const auto& section : image.sections()) {
    if (section.name == ".text") {
      std::printf("%s\n",
                  isa::DisassembleSection(section, image).c_str());
    }
  }
  std::printf("bomb block at 0x%llx; seed input: \"%s\"\n\n",
              static_cast<unsigned long long>(bombs::BombAddress(image)),
              bomb->seed_argv.size() > 1 ? bomb->seed_argv[1].c_str() : "");

  std::printf("attacking with the %s profile...\n", tool.name.c_str());
  service::AnalysisRequest request;
  request.bomb = bomb->id;
  request.profile = tool.name;
  auto res = service::Analyze(request);
  if (!res.ok) {
    std::printf("analysis rejected: %s\n", res.error.c_str());
    return 1;
  }
  std::printf("outcome: %s",
              std::string(tools::OutcomeLabel(res.outcome)).c_str());
  if (res.expected != "-") {
    std::printf("   (paper reports %s for %s)", res.expected.c_str(),
                tool.name.c_str());
  }
  std::printf("\n");
  if (res.engine.validated) {
    std::printf("triggering input: \"%s\" in %llu rounds\n",
                res.engine.claimed_argv[1].c_str(),
                static_cast<unsigned long long>(res.engine.metrics.rounds));
  } else if (res.engine.claimed) {
    std::printf("claimed (unvalidated) input: \"%s\"\n",
                res.engine.claimed_argv.size() > 1
                    ? res.engine.claimed_argv[1].c_str()
                    : "");
  }
  if (res.engine.aborted) {
    std::printf("engine aborted: %s\n", res.engine.abort_reason.c_str());
  }
  for (const auto& d : res.engine.diag.entries) {
    std::printf("diag Es%d at 0x%llx: %s\n", static_cast<int>(d.stage),
                static_cast<unsigned long long>(d.pc), d.detail.c_str());
    break;  // first diagnostic is the root cause
  }
  return 0;
}
