// Quickstart: assemble a tiny guarded binary, explore it concolically,
// and print the recovered triggering input.
//
//   $ example_quickstart
//
// Walks the whole pipeline: assembler -> VM -> trace -> symbolic executor
// -> solver -> validated input.
#include <cstdio>

#include "src/isa/assembler.h"
#include "src/service/api.h"
#include "src/vm/machine.h"

int main() {
  using namespace sbce;

  // A three-character "password check": argv[1] must be "42!".
  constexpr std::string_view kSource = R"(
    .entry main
    main:
      ld8 r3, [r2+8]      ; argv[1]
      ld1 r4, [r3+0]
      cmpeqi r5, r4, '4'
      bz r5, reject
      ld1 r4, [r3+1]
      cmpeqi r5, r4, '2'
      bz r5, reject
      ld1 r4, [r3+2]
      cmpeqi r5, r4, '!'
      bz r5, reject
    bomb:                  ; the guarded block we want to reach
      sys 16
    reject:
      movi r1, 0
      sys 0
  )";

  auto image_or = isa::Assemble(kSource);
  if (!image_or.ok()) {
    std::printf("assembly failed: %s\n",
                image_or.status().ToString().c_str());
    return 1;
  }
  const isa::BinaryImage image = std::move(image_or).value();
  std::printf("assembled %zu bytes; target block at 0x%llx\n",
              image.TotalBytes(),
              static_cast<unsigned long long>(*image.FindSymbol("bomb")));

  // First, run it concretely with a wrong guess.
  vm::Machine machine(image, {"prog", "???"});
  auto concrete = machine.Run();
  std::printf("concrete run with \"???\": bomb %s\n",
              concrete.bomb_triggered ? "TRIGGERED" : "not triggered");

  // Then let the reference engine find the real input, through the
  // unified analysis API (the same request shape the daemon serves).
  service::AnalysisRequest request;
  request.local_image = &image;
  request.seed_argv = {"prog", "???"};
  request.target_pc = *image.FindSymbol("bomb");
  request.profile = "Ideal";
  request.want_path_condition = true;
  auto result = service::Analyze(request);

  if (result.engine.validated) {
    std::printf("concolic engine recovered the input: \"%s\" "
                "(%llu rounds, %llu solver queries)\n",
                result.engine.claimed_argv[1].c_str(),
                static_cast<unsigned long long>(result.engine.metrics.rounds),
                static_cast<unsigned long long>(
                    result.engine.metrics.solver_queries));
    std::printf("seed path condition (%zu constraints):\n",
                result.path_condition.size());
    for (const auto& line : result.path_condition) {
      std::printf("  %s\n", line.c_str());
    }
  } else {
    std::printf("engine failed to reach the block: %s\n",
                result.error.empty() ? "exploration exhausted"
                                     : result.error.c_str());
    return 1;
  }
  return 0;
}
