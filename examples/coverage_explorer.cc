// Coverage explorer (the paper's first application scenario, §V.D.1):
// bug detection needs high control-flow coverage. This example explores a
// small input parser, enumerates every discovered path and reports the
// inputs that exercise them — including the one that reaches the "bug".
#include <cstdio>
#include <set>

#include "src/isa/assembler.h"
#include "src/service/api.h"
#include "src/vm/machine.h"

int main() {
  using namespace sbce;
  // A toy command parser: first byte selects a mode, second byte is a
  // parameter. Mode 'D' with parameter > 0x60 walks into the bug.
  constexpr std::string_view kParser = R"(
    .entry main
    main:
      ld8 r9, [r2+8]
      ld1 r10, [r9+0]      ; mode
      ld1 r11, [r9+1]      ; parameter
      cmpeqi r4, r10, 'A'
      bnz r4, mode_a
      cmpeqi r4, r10, 'B'
      bnz r4, mode_b
      cmpeqi r4, r10, 'D'
      bnz r4, mode_d
      jmp done
    mode_a:
      addi r12, r11, 1
      jmp done
    mode_b:
      subi r12, r11, 1
      jmp done
    mode_d:
      cmpltui r4, r11, 0x61
      bnz r4, done
    bomb:                  ; the "bug": reachable only via D + param>0x60
      sys 16
    done:
      movi r1, 0
      sys 0
  )";

  auto image_or = isa::Assemble(kParser);
  SBCE_CHECK(image_or.ok());
  const isa::BinaryImage image = std::move(image_or).value();

  service::AnalysisRequest request;
  request.local_image = &image;
  request.seed_argv = {"prog", "xx"};
  request.target_pc = *image.FindSymbol("bomb");
  request.profile = "Ideal";
  auto result = service::Analyze(request).engine;

  // Replay every explored input to measure aggregate coverage.
  std::set<uint64_t> covered;
  for (const auto& argv : result.explored_inputs) {
    vm::Machine replay(image, argv);
    replay.set_trace_hook(
        [&covered](const vm::TraceEvent& ev) { covered.insert(ev.pc); });
    replay.Run();
  }

  const size_t total_instrs =
      image.sections().front().data.size() / isa::kInstrBytes;
  std::printf("explored %llu rounds, %llu solver queries\n",
              static_cast<unsigned long long>(result.metrics.rounds),
              static_cast<unsigned long long>(result.metrics.solver_queries));
  std::printf("instruction coverage: %zu / %zu (%.0f%%)\n", covered.size(),
              total_instrs,
              100.0 * static_cast<double>(covered.size()) /
                  static_cast<double>(total_instrs));
  if (result.validated) {
    std::printf("bug-triggering input found: mode '%c', parameter 0x%02x\n",
                result.claimed_argv[1][0],
                static_cast<unsigned char>(result.claimed_argv[1][1]));
  } else {
    std::printf("bug not reached\n");
    return 1;
  }
  return 0;
}
