// Crackme solver: a serial-key check in the style of CTF crackmes (the
// paper's motivating showcase). The key is validated by arithmetic over
// its characters, so the engine must actually solve constraints, not just
// match bytes.
//
// Check: for a 6-character key k,
//   (k[i] - '0') are digits,  sum == 21,  k[0]*k[5] parity rule,
//   and a rolling checksum hits a magic value.
#include <cstdio>

#include "src/isa/assembler.h"
#include "src/service/api.h"
#include "src/vm/machine.h"

int main() {
  using namespace sbce;
  constexpr std::string_view kCrackme = R"(
    .entry main
    main:
      ld8 r9, [r2+8]       ; key
      ; all six characters must be digits and the digit sum must be 21
      movi r10, 0          ; i
      movi r11, 0          ; sum
    digits:
      ldx1 r4, [r9+r10]
      cmpltui r5, r4, '0'
      bnz r5, reject
      cmpltui r5, r4, ':'  ; '9'+1
      bz r5, reject
      subi r4, r4, '0'
      add r11, r11, r4
      addi r10, r10, 1
      cmpltui r5, r10, 6
      bnz r5, digits
      cmpeqi r5, r11, 21
      bz r5, reject
      ; rolling checksum: c = ((c * 31) + digit) mod 65536 must be 0xE348
      movi r10, 0
      movi r12, 7          ; seed
    roll:
      ldx1 r4, [r9+r10]
      subi r4, r4, '0'
      muli r12, r12, 31
      add r12, r12, r4
      movi r5, 0xffff
      and r12, r12, r5
      addi r10, r10, 1
      cmpltui r5, r10, 6
      bnz r5, roll
      cmpeqi r5, r12, 0xE348
      bz r5, reject
    bomb:                  ; "key accepted"
      sys 16
    reject:
      movi r1, 0
      sys 0
  )";

  auto image_or = isa::Assemble(kCrackme);
  SBCE_CHECK(image_or.ok());
  const isa::BinaryImage image = std::move(image_or).value();

  std::printf("crackme: 6-digit key, digit-sum 21, rolling checksum "
              "0xE348\n");
  service::AnalysisRequest request;
  request.local_image = &image;
  request.seed_argv = {"prog", "000000"};
  request.target_pc = *image.FindSymbol("bomb");
  request.profile = "Ideal";
  auto result = service::Analyze(request).engine;
  if (!result.validated) {
    std::printf("no key found (rounds=%llu)\n",
                static_cast<unsigned long long>(result.metrics.rounds));
    return 1;
  }
  std::printf("recovered key: \"%s\" after %llu rounds / %llu queries\n",
              result.claimed_argv[1].c_str(),
              static_cast<unsigned long long>(result.metrics.rounds),
              static_cast<unsigned long long>(result.metrics.solver_queries));

  // Double-check it concretely.
  vm::Machine machine(image, {"prog", result.claimed_argv[1]});
  std::printf("concrete validation: %s\n",
              machine.Run().bomb_triggered ? "ACCEPTED" : "rejected?!");
  return 0;
}
